// obsctl — offline analyzer for Chameleon observability artifacts.
//
// Subcommands:
//   obsctl report --journal=J.jsonl [--trace=T.jsonl] [--metrics=M.jsonl]
//       Renders per-MUP repair cost, per-arm pull/reward summary, and a
//       span latency rollup, and cross-checks the registry contract.
//       Exit 0 when every contract check passes, 1 on a violation, 2 on
//       usage or I/O errors.
//   obsctl diff <base> <new> [--threshold=0.25]
//       Compares two artifacts of the same kind (bench JSON, metrics
//       JSONL, or run journals) and flags relative deltas beyond the
//       threshold. Exit 1 when any flagged delta is in the regressing
//       direction.
//   obsctl validate <bench.json> [...]
//       Schema-validates BENCH_*.json reports. Exit 1 on the first
//       invalid file.
//
// All inputs tolerate a truncated final line (a run killed mid-write
// with streaming sinks attached); corruption anywhere else is an error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "tools/obsctl/analysis.h"

namespace chameleon::obsctl {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  obsctl report --journal=<path> [--trace=<path>] "
      "[--metrics=<path>]\n"
      "  obsctl diff <base> <new> [--threshold=<fraction, default 0.25>]\n"
      "  obsctl validate <bench.json> [...]\n");
}

util::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return util::Status::IoError("read failed for " + path);
  }
  return buffer.str();
}

/// Pulls `--name=value` out of args; returns true and erases it when
/// present.
bool TakeFlag(std::vector<std::string>* args, const std::string& name,
              std::string* value) {
  const std::string prefix = "--" + name + "=";
  for (auto it = args->begin(); it != args->end(); ++it) {
    if (it->rfind(prefix, 0) == 0) {
      *value = it->substr(prefix.size());
      args->erase(it);
      return true;
    }
  }
  return false;
}

int RunReport(std::vector<std::string> args) {
  std::string journal_path;
  std::string trace_path;
  std::string metrics_path;
  if (!TakeFlag(&args, "journal", &journal_path)) {
    std::fprintf(stderr, "obsctl report: --journal=<path> is required\n");
    return kExitUsage;
  }
  TakeFlag(&args, "trace", &trace_path);
  TakeFlag(&args, "metrics", &metrics_path);
  if (!args.empty()) {
    std::fprintf(stderr, "obsctl report: unknown argument: %s\n",
                 args[0].c_str());
    return kExitUsage;
  }

  ReportInput input;
  auto journal = ReadFile(journal_path);
  if (!journal.ok()) {
    std::fprintf(stderr, "obsctl report: %s\n",
                 journal.status().ToString().c_str());
    return kExitUsage;
  }
  input.journal_text = std::move(*journal);
  if (!trace_path.empty()) {
    auto trace = ReadFile(trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "obsctl report: %s\n",
                   trace.status().ToString().c_str());
      return kExitUsage;
    }
    input.trace_text = std::move(*trace);
  }
  if (!metrics_path.empty()) {
    auto metrics = ReadFile(metrics_path);
    if (!metrics.ok()) {
      std::fprintf(stderr, "obsctl report: %s\n",
                   metrics.status().ToString().c_str());
      return kExitUsage;
    }
    input.metrics_text = std::move(*metrics);
  }

  auto report = BuildReport(input);
  if (!report.ok()) {
    std::fprintf(stderr, "obsctl report: %s\n",
                 report.status().ToString().c_str());
    return kExitUsage;
  }
  std::fputs(report->rendered.c_str(), stdout);
  return report->contract_ok ? kExitOk : kExitViolation;
}

int RunDiff(std::vector<std::string> args) {
  std::string threshold_text = "0.25";
  TakeFlag(&args, "threshold", &threshold_text);
  if (args.size() != 2) {
    std::fprintf(stderr, "obsctl diff: expected exactly two paths\n");
    return kExitUsage;
  }
  char* end = nullptr;
  const double threshold = std::strtod(threshold_text.c_str(), &end);
  if (end == nullptr || *end != '\0' || threshold < 0.0) {
    std::fprintf(stderr, "obsctl diff: bad --threshold: %s\n",
                 threshold_text.c_str());
    return kExitUsage;
  }

  auto base = ReadFile(args[0]);
  if (!base.ok()) {
    std::fprintf(stderr, "obsctl diff: %s\n",
                 base.status().ToString().c_str());
    return kExitUsage;
  }
  auto current = ReadFile(args[1]);
  if (!current.ok()) {
    std::fprintf(stderr, "obsctl diff: %s\n",
                 current.status().ToString().c_str());
    return kExitUsage;
  }
  auto diff = DiffArtifacts(*base, *current, threshold);
  if (!diff.ok()) {
    std::fprintf(stderr, "obsctl diff: %s\n",
                 diff.status().ToString().c_str());
    return kExitUsage;
  }
  std::fputs(diff->rendered.c_str(), stdout);
  return diff->regressions == 0 ? kExitOk : kExitViolation;
}

int RunValidate(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "obsctl validate: expected at least one bench JSON path\n");
    return kExitUsage;
  }
  for (const std::string& path : args) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "obsctl validate: %s\n",
                   text.status().ToString().c_str());
      return kExitUsage;
    }
    const util::Status status = ValidateBenchJson(*text);
    if (!status.ok()) {
      std::fprintf(stderr, "obsctl validate: %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return kExitViolation;
    }
    std::printf("%s: OK\n", path.c_str());
  }
  return kExitOk;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return kExitUsage;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "report") return RunReport(std::move(args));
  if (command == "diff") return RunDiff(std::move(args));
  if (command == "validate") return RunValidate(args);
  std::fprintf(stderr, "obsctl: unknown command: %s\n", command.c_str());
  PrintUsage();
  return kExitUsage;
}

}  // namespace
}  // namespace chameleon::obsctl

int main(int argc, char** argv) {
  return chameleon::obsctl::Main(argc, argv);
}
