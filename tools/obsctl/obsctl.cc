// obsctl — offline analyzer for Chameleon observability artifacts.
//
// Subcommands:
//   obsctl report --journal=J.jsonl [--trace=T.jsonl] [--metrics=M.jsonl]
//       Renders per-MUP repair cost, per-arm pull/reward summary, and a
//       span latency rollup, and cross-checks the registry contract.
//       Exit 0 when every contract check passes, 1 on a violation, 2 on
//       usage or I/O errors.
//   obsctl diff <base> <new> [--threshold=0.25]
//       Compares two artifacts of the same kind (bench JSON, metrics
//       JSONL, or run journals) and flags relative deltas beyond the
//       threshold. Exit 1 when any flagged delta is in the regressing
//       direction.
//   obsctl validate <file> [...]
//       Schema-validates BENCH_*.json reports and OpenMetrics snapshots
//       (a file starting with '#' is treated as OpenMetrics — the
//       `stats` frame / --stats-out body). Exit 1 on the first invalid
//       file.
//   obsctl aggregate --journal=<daemon.jsonl> [--out-dir=<dir>]
//       Splits a daemon journal into per-request rollups (one row per
//       request id), re-runs the per-request registry contract over the
//       unwrapped telemetry, and optionally writes each request's
//       journal/trace back out as standalone artifacts. Exit 1 when any
//       request's contract is violated.
//   obsctl tail --journal=<daemon.jsonl> [--follow] [--poll-ms=200]
//       [--max-polls=N]
//       Prints a daemon journal with `req.event`/`req.span` wrapper
//       lines unwrapped to `[<rid>] <original line>`. --follow keeps
//       polling for appended lines until daemon.exit (or --max-polls).
//
// All inputs tolerate a truncated final line (a run killed mid-write
// with streaming sinks attached); corruption anywhere else is an error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/util/status.h"
#include "tools/obsctl/analysis.h"

namespace chameleon::obsctl {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  obsctl report --journal=<path> [--trace=<path>] "
      "[--metrics=<path>]\n"
      "  obsctl diff <base> <new> [--threshold=<fraction, default 0.25>]\n"
      "  obsctl validate <bench.json | stats.om> [...]\n"
      "  obsctl aggregate --journal=<daemon.jsonl> [--out-dir=<dir>]\n"
      "  obsctl tail --journal=<daemon.jsonl> [--follow] [--poll-ms=200]\n"
      "              [--max-polls=<n>]\n");
}

util::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return util::Status::IoError("read failed for " + path);
  }
  return buffer.str();
}

/// Pulls `--name=value` out of args; returns true and erases it when
/// present.
bool TakeFlag(std::vector<std::string>* args, const std::string& name,
              std::string* value) {
  const std::string prefix = "--" + name + "=";
  for (auto it = args->begin(); it != args->end(); ++it) {
    if (it->rfind(prefix, 0) == 0) {
      *value = it->substr(prefix.size());
      args->erase(it);
      return true;
    }
  }
  return false;
}

int RunReport(std::vector<std::string> args) {
  std::string journal_path;
  std::string trace_path;
  std::string metrics_path;
  if (!TakeFlag(&args, "journal", &journal_path)) {
    std::fprintf(stderr, "obsctl report: --journal=<path> is required\n");
    return kExitUsage;
  }
  TakeFlag(&args, "trace", &trace_path);
  TakeFlag(&args, "metrics", &metrics_path);
  if (!args.empty()) {
    std::fprintf(stderr, "obsctl report: unknown argument: %s\n",
                 args[0].c_str());
    return kExitUsage;
  }

  ReportInput input;
  auto journal = ReadFile(journal_path);
  if (!journal.ok()) {
    std::fprintf(stderr, "obsctl report: %s\n",
                 journal.status().ToString().c_str());
    return kExitUsage;
  }
  input.journal_text = std::move(*journal);
  if (!trace_path.empty()) {
    auto trace = ReadFile(trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "obsctl report: %s\n",
                   trace.status().ToString().c_str());
      return kExitUsage;
    }
    input.trace_text = std::move(*trace);
  }
  if (!metrics_path.empty()) {
    auto metrics = ReadFile(metrics_path);
    if (!metrics.ok()) {
      std::fprintf(stderr, "obsctl report: %s\n",
                   metrics.status().ToString().c_str());
      return kExitUsage;
    }
    input.metrics_text = std::move(*metrics);
  }

  auto report = BuildReport(input);
  if (!report.ok()) {
    std::fprintf(stderr, "obsctl report: %s\n",
                 report.status().ToString().c_str());
    return kExitUsage;
  }
  std::fputs(report->rendered.c_str(), stdout);
  return report->contract_ok ? kExitOk : kExitViolation;
}

int RunDiff(std::vector<std::string> args) {
  std::string threshold_text = "0.25";
  TakeFlag(&args, "threshold", &threshold_text);
  if (args.size() != 2) {
    std::fprintf(stderr, "obsctl diff: expected exactly two paths\n");
    return kExitUsage;
  }
  char* end = nullptr;
  const double threshold = std::strtod(threshold_text.c_str(), &end);
  if (end == nullptr || *end != '\0' || threshold < 0.0) {
    std::fprintf(stderr, "obsctl diff: bad --threshold: %s\n",
                 threshold_text.c_str());
    return kExitUsage;
  }

  auto base = ReadFile(args[0]);
  if (!base.ok()) {
    std::fprintf(stderr, "obsctl diff: %s\n",
                 base.status().ToString().c_str());
    return kExitUsage;
  }
  auto current = ReadFile(args[1]);
  if (!current.ok()) {
    std::fprintf(stderr, "obsctl diff: %s\n",
                 current.status().ToString().c_str());
    return kExitUsage;
  }
  auto diff = DiffArtifacts(*base, *current, threshold);
  if (!diff.ok()) {
    std::fprintf(stderr, "obsctl diff: %s\n",
                 diff.status().ToString().c_str());
    return kExitUsage;
  }
  std::fputs(diff->rendered.c_str(), stdout);
  return diff->regressions == 0 ? kExitOk : kExitViolation;
}

int RunValidate(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "obsctl validate: expected at least one file path\n");
    return kExitUsage;
  }
  for (const std::string& path : args) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "obsctl validate: %s\n",
                   text.status().ToString().c_str());
      return kExitUsage;
    }
    // OpenMetrics expositions always open with a '#' comment line
    // (`# TYPE ...` or bare `# EOF`); bench reports open with '{'.
    const bool openmetrics = !text->empty() && (*text)[0] == '#';
    const util::Status status =
        openmetrics ? ValidateOpenMetrics(*text) : ValidateBenchJson(*text);
    if (!status.ok()) {
      std::fprintf(stderr, "obsctl validate: %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return kExitViolation;
    }
    std::printf("%s: OK (%s)\n", path.c_str(),
                openmetrics ? "openmetrics" : "bench json");
  }
  return kExitOk;
}

/// File-name-safe form of a request id (ids are client-chosen strings).
std::string SanitizeForFilename(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (const char c : id) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out.push_back(safe ? c : '_');
  }
  return out.empty() ? "_" : out;
}

util::Status WriteLines(const std::string& path,
                        const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::IoError("cannot open " + path);
  for (const std::string& line : lines) {
    out << line << '\n';
  }
  out.flush();
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

int RunAggregate(std::vector<std::string> args) {
  std::string journal_path;
  std::string out_dir;
  if (!TakeFlag(&args, "journal", &journal_path)) {
    std::fprintf(stderr,
                 "obsctl aggregate: --journal=<path> is required\n");
    return kExitUsage;
  }
  TakeFlag(&args, "out-dir", &out_dir);
  if (!args.empty()) {
    std::fprintf(stderr, "obsctl aggregate: unknown argument: %s\n",
                 args[0].c_str());
    return kExitUsage;
  }
  auto text = ReadFile(journal_path);
  if (!text.ok()) {
    std::fprintf(stderr, "obsctl aggregate: %s\n",
                 text.status().ToString().c_str());
    return kExitUsage;
  }
  auto aggregate = AggregateDaemonJournal(*text);
  if (!aggregate.ok()) {
    std::fprintf(stderr, "obsctl aggregate: %s\n",
                 aggregate.status().ToString().c_str());
    return kExitUsage;
  }
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "obsctl aggregate: cannot create %s: %s\n",
                   out_dir.c_str(), ec.message().c_str());
      return kExitUsage;
    }
    for (const RequestRollup& request : aggregate->requests) {
      const std::string stem = out_dir + "/" + SanitizeForFilename(request.id);
      if (!request.journal_lines.empty()) {
        const util::Status wrote =
            WriteLines(stem + ".journal.jsonl", request.journal_lines);
        if (!wrote.ok()) {
          std::fprintf(stderr, "obsctl aggregate: %s\n",
                       wrote.ToString().c_str());
          return kExitUsage;
        }
      }
      if (!request.span_lines.empty()) {
        const util::Status wrote =
            WriteLines(stem + ".trace.jsonl", request.span_lines);
        if (!wrote.ok()) {
          std::fprintf(stderr, "obsctl aggregate: %s\n",
                       wrote.ToString().c_str());
          return kExitUsage;
        }
      }
    }
  }
  std::fputs(RenderDaemonAggregate(*aggregate).c_str(), stdout);
  return aggregate->AllContractsHold() ? kExitOk : kExitViolation;
}

int RunTail(std::vector<std::string> args) {
  std::string journal_path;
  std::string poll_ms_text = "200";
  std::string max_polls_text;
  if (!TakeFlag(&args, "journal", &journal_path)) {
    std::fprintf(stderr, "obsctl tail: --journal=<path> is required\n");
    return kExitUsage;
  }
  bool follow = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--follow") {
      follow = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  TakeFlag(&args, "poll-ms", &poll_ms_text);
  TakeFlag(&args, "max-polls", &max_polls_text);
  if (!args.empty()) {
    std::fprintf(stderr, "obsctl tail: unknown argument: %s\n",
                 args[0].c_str());
    return kExitUsage;
  }
  const int poll_ms = std::atoi(poll_ms_text.c_str());
  const long max_polls =
      max_polls_text.empty() ? -1 : std::atol(max_polls_text.c_str());
  if (poll_ms < 1) {
    std::fprintf(stderr, "obsctl tail: bad --poll-ms: %s\n",
                 poll_ms_text.c_str());
    return kExitUsage;
  }

  // Offset-based incremental reads: only complete ('\n'-terminated)
  // lines are consumed, so a line the daemon is mid-appending is picked
  // up whole on a later poll instead of being printed ragged.
  size_t offset = 0;
  std::string pending;
  bool saw_exit = false;
  long polls = 0;
  for (;;) {
    {
      std::ifstream in(journal_path, std::ios::binary);
      if (!in) {
        if (!follow) {
          std::fprintf(stderr, "obsctl tail: cannot open %s\n",
                       journal_path.c_str());
          return kExitUsage;
        }
      } else {
        in.seekg(static_cast<std::streamoff>(offset));
        std::ostringstream buffer;
        buffer << in.rdbuf();
        pending += buffer.str();
        offset += buffer.str().size();
      }
    }
    size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (line.empty()) continue;
      std::printf("%s\n", RenderTailLine(line).c_str());
      if (line.find("\"type\":\"daemon.exit\"") != std::string::npos) {
        saw_exit = true;
      }
    }
    std::fflush(stdout);
    if (!follow || saw_exit) break;
    ++polls;
    if (max_polls >= 0 && polls >= max_polls) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
  return kExitOk;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return kExitUsage;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "report") return RunReport(std::move(args));
  if (command == "diff") return RunDiff(std::move(args));
  if (command == "validate") return RunValidate(args);
  if (command == "aggregate") return RunAggregate(std::move(args));
  if (command == "tail") return RunTail(std::move(args));
  std::fprintf(stderr, "obsctl: unknown command: %s\n", command.c_str());
  PrintUsage();
  return kExitUsage;
}

}  // namespace
}  // namespace chameleon::obsctl

int main(int argc, char** argv) {
  return chameleon::obsctl::Main(argc, argv);
}
