#ifndef CHAMELEON_TOOLS_OBSCTL_ANALYSIS_H_
#define CHAMELEON_TOOLS_OBSCTL_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/quantile_digest.h"
#include "src/util/status.h"
#include "tools/obsctl/json.h"

namespace chameleon::obsctl {

// ---------------------------------------------------------------------------
// JSONL parsing (shared by journal / trace / metrics inputs)
// ---------------------------------------------------------------------------

/// One JSONL artifact split into parsed lines. `truncated_tail` is true
/// when the final line failed to parse — the signature of a run killed
/// mid-write with the streaming sinks attached; the ragged line is
/// dropped and analysis proceeds on the intact prefix. A parse failure
/// on any *earlier* line is a hard error (the file is corrupt, not
/// merely truncated).
struct JsonlFile {
  std::vector<JsonValue> lines;
  bool truncated_tail = false;
};

[[nodiscard]] util::Result<JsonlFile> ParseJsonl(const std::string& text);

// ---------------------------------------------------------------------------
// Journal analysis
// ---------------------------------------------------------------------------

/// Aggregates for one plan-entry target ("per-MUP repair cost").
struct TargetStats {
  int64_t planned = 0;   // tuples requested by plan.entry events
  int64_t queries = 0;   // fm.query events (parked attempts included)
  int64_t accepted = 0;
  int64_t rejected_distribution = 0;
  int64_t rejected_quality = 0;
  int64_t rejected_both = 0;
  int64_t retries = 0;   // fm.retry events attributed to this target
  /// fm.parked events from a transport failure: the failing query was
  /// journaled but never evaluated, so each costs one query in the
  /// accounting.
  int64_t parked = 0;
  /// fm.parked events from a round-boundary stop (codes "cancelled" /
  /// "deadline_exceeded"): the entry parked between rounds and no
  /// journaled query was lost.
  int64_t parked_boundary = 0;

  int64_t rejected() const {
    return rejected_distribution + rejected_quality + rejected_both;
  }
  int64_t parked_total() const { return parked + parked_boundary; }
};

/// Aggregates for one bandit arm.
struct ArmStats {
  int64_t pulls = 0;     // fm.query events naming this arm
  int64_t accepted = 0;  // rewards
  int64_t rejected = 0;
};

/// Everything `obsctl report` derives from a run journal.
struct JournalStats {
  int64_t total_events = 0;
  bool truncated_tail = false;
  std::map<std::string, int64_t> events_by_type;

  // run.start fields (when present).
  bool has_run_start = false;
  int64_t tau = 0;
  int64_t seed = 0;

  // run.end fields (absent when the run was killed mid-way).
  bool has_run_end = false;
  int64_t end_queries = 0;
  int64_t end_accepted = 0;
  int64_t end_parked = 0;
  bool fully_resolved = false;

  std::vector<std::pair<std::string, TargetStats>> targets;  // 1st-seen order
  std::map<int64_t, ArmStats> arms;

  int64_t TotalQueries() const;
  int64_t TotalAccepted() const;
  int64_t TotalRejected() const;
  int64_t TotalParked() const;
  int64_t TotalBoundaryParked() const;
  int64_t TotalRetries() const;

  /// The registry contract (DESIGN.md §9, pinned by chameleon_test):
  /// accepted + rejected == evaluated queries == fm.query - parked.
  bool ContractHolds() const;
};

[[nodiscard]] util::Result<JournalStats> AnalyzeJournal(
    const std::string& jsonl_text);

// ---------------------------------------------------------------------------
// Trace analysis
// ---------------------------------------------------------------------------

/// Latency rollup for one span name: tick-duration percentiles over all
/// completed spans with that name.
struct SpanRollup {
  std::string name;
  int depth = 0;  // minimum depth the name occurs at (for tree indent)
  int64_t count = 0;
  int64_t open = 0;  // spans with end_tick == 0 (killed-run leftovers)
  int64_t total_ticks = 0;
  obs::QuantileDigest ticks;
};

/// Rollups in first-seen order; tolerates a truncated tail like the
/// journal parser. `truncated` may be null.
[[nodiscard]] util::Result<std::vector<SpanRollup>> AnalyzeTrace(
    const std::string& jsonl_text, bool* truncated);

// ---------------------------------------------------------------------------
// Metrics analysis
// ---------------------------------------------------------------------------

struct MetricEntry {
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;
};

[[nodiscard]] util::Result<std::map<std::string, MetricEntry>>
AnalyzeMetrics(const std::string& jsonl_text);

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

struct ReportInput {
  std::string journal_text;  // required
  std::string trace_text;    // optional ("" = no span rollup)
  std::string metrics_text;  // optional ("" = no registry cross-check)
};

struct Report {
  std::string rendered;       // the full human-readable report
  bool contract_ok = false;   // every cross-check that could run passed
};

[[nodiscard]] util::Result<Report> BuildReport(const ReportInput& input);

// ---------------------------------------------------------------------------
// Diff / regression gate
// ---------------------------------------------------------------------------

enum class ArtifactKind { kBenchJson, kMetricsJsonl, kJournalJsonl };

/// Sniffs which artifact a file is: a bench JSON report (single object
/// with schema_version), a metrics JSONL dump, or a run journal.
[[nodiscard]] util::Result<ArtifactKind> DetectArtifactKind(
    const std::string& text);

struct DiffResult {
  std::string rendered;
  int64_t compared = 0;    // entries present on both sides
  int64_t flagged = 0;     // deltas beyond the threshold (either way)
  int64_t regressions = 0; // flagged deltas in the bad direction
};

/// Compares two artifacts of the same kind. `threshold` is relative
/// (0.25 = 25%). For bench reports the bad direction is ns/op growing;
/// for metrics and journals any flagged count delta is a regression
/// (the runs were supposed to be identical).
[[nodiscard]] util::Result<DiffResult> DiffArtifacts(const std::string& a,
                                                     const std::string& b,
                                                     double threshold);

// ---------------------------------------------------------------------------
// Bench JSON schema
// ---------------------------------------------------------------------------

/// The schema version the validator and diff understand. Bump when the
/// bench reporter's output shape changes incompatibly.
inline constexpr int64_t kBenchSchemaVersion = 1;

/// Validates a BENCH_<name>.json document: schema_version must equal
/// kBenchSchemaVersion; `name`, `git_sha`, `build_type` strings;
/// `cases` a non-empty array of {name, ns_per_op >= 0, iterations >= 1,
/// p50_ns <= p90_ns <= p99_ns}.
[[nodiscard]] util::Status ValidateBenchJson(const std::string& text);

}  // namespace chameleon::obsctl

#endif  // CHAMELEON_TOOLS_OBSCTL_ANALYSIS_H_
