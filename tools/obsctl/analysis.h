#ifndef CHAMELEON_TOOLS_OBSCTL_ANALYSIS_H_
#define CHAMELEON_TOOLS_OBSCTL_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/quantile_digest.h"
#include "src/util/status.h"
#include "tools/obsctl/json.h"

namespace chameleon::obsctl {

// ---------------------------------------------------------------------------
// JSONL parsing (shared by journal / trace / metrics inputs)
// ---------------------------------------------------------------------------

/// One JSONL artifact split into parsed lines. `truncated_tail` is true
/// when the final line failed to parse — the signature of a run killed
/// mid-write with the streaming sinks attached; the ragged line is
/// dropped and analysis proceeds on the intact prefix. A parse failure
/// on any *earlier* line is a hard error (the file is corrupt, not
/// merely truncated).
struct JsonlFile {
  std::vector<JsonValue> lines;
  bool truncated_tail = false;
};

[[nodiscard]] util::Result<JsonlFile> ParseJsonl(const std::string& text);

// ---------------------------------------------------------------------------
// Journal analysis
// ---------------------------------------------------------------------------

/// Aggregates for one plan-entry target ("per-MUP repair cost").
struct TargetStats {
  int64_t planned = 0;   // tuples requested by plan.entry events
  int64_t queries = 0;   // fm.query events (parked attempts included)
  int64_t accepted = 0;
  int64_t rejected_distribution = 0;
  int64_t rejected_quality = 0;
  int64_t rejected_both = 0;
  int64_t retries = 0;   // fm.retry events attributed to this target
  /// fm.parked events from a transport failure: the failing query was
  /// journaled but never evaluated, so each costs one query in the
  /// accounting.
  int64_t parked = 0;
  /// fm.parked events from a round-boundary stop (codes "cancelled" /
  /// "deadline_exceeded"): the entry parked between rounds and no
  /// journaled query was lost.
  int64_t parked_boundary = 0;

  int64_t rejected() const {
    return rejected_distribution + rejected_quality + rejected_both;
  }
  int64_t parked_total() const { return parked + parked_boundary; }
};

/// Aggregates for one bandit arm.
struct ArmStats {
  int64_t pulls = 0;     // fm.query events naming this arm
  int64_t accepted = 0;  // rewards
  int64_t rejected = 0;
};

/// Everything `obsctl report` derives from a run journal.
struct JournalStats {
  int64_t total_events = 0;
  bool truncated_tail = false;
  std::map<std::string, int64_t> events_by_type;

  // run.start fields (when present).
  bool has_run_start = false;
  int64_t tau = 0;
  int64_t seed = 0;

  // run.end fields (absent when the run was killed mid-way).
  bool has_run_end = false;
  int64_t end_queries = 0;
  int64_t end_accepted = 0;
  int64_t end_parked = 0;
  bool fully_resolved = false;

  std::vector<std::pair<std::string, TargetStats>> targets;  // 1st-seen order
  std::map<int64_t, ArmStats> arms;

  int64_t TotalQueries() const;
  int64_t TotalAccepted() const;
  int64_t TotalRejected() const;
  int64_t TotalParked() const;
  int64_t TotalBoundaryParked() const;
  int64_t TotalRetries() const;

  /// The registry contract (DESIGN.md §9, pinned by chameleon_test):
  /// accepted + rejected == evaluated queries == fm.query - parked.
  bool ContractHolds() const;
};

[[nodiscard]] util::Result<JournalStats> AnalyzeJournal(
    const std::string& jsonl_text);

// ---------------------------------------------------------------------------
// Trace analysis
// ---------------------------------------------------------------------------

/// Latency rollup for one span name: tick-duration percentiles over all
/// completed spans with that name.
struct SpanRollup {
  std::string name;
  int depth = 0;  // minimum depth the name occurs at (for tree indent)
  int64_t count = 0;
  int64_t open = 0;  // spans with end_tick == 0 (killed-run leftovers)
  int64_t total_ticks = 0;
  obs::QuantileDigest ticks;
};

/// Rollups in first-seen order; tolerates a truncated tail like the
/// journal parser. `truncated` may be null.
///
/// Spans are keyed by (request id, span id) — NOT span id alone — so a
/// combined trace carrying interleaved spans from concurrent requests
/// (each request numbers its spans from 1) never conflates two
/// requests' spans. Duplicate records of one (rid, id) collapse to a
/// single span, preferring the completed record; depth comes from
/// walking the parent chain within the same request, falling back to
/// the recorded depth when the chain doesn't fully resolve (streamed
/// partial files).
[[nodiscard]] util::Result<std::vector<SpanRollup>> AnalyzeTrace(
    const std::string& jsonl_text, bool* truncated);

// ---------------------------------------------------------------------------
// Metrics analysis
// ---------------------------------------------------------------------------

struct MetricEntry {
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;
};

[[nodiscard]] util::Result<std::map<std::string, MetricEntry>>
AnalyzeMetrics(const std::string& jsonl_text);

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

struct ReportInput {
  std::string journal_text;  // required
  std::string trace_text;    // optional ("" = no span rollup)
  std::string metrics_text;  // optional ("" = no registry cross-check)
};

struct Report {
  std::string rendered;       // the full human-readable report
  bool contract_ok = false;   // every cross-check that could run passed
};

[[nodiscard]] util::Result<Report> BuildReport(const ReportInput& input);

// ---------------------------------------------------------------------------
// Diff / regression gate
// ---------------------------------------------------------------------------

enum class ArtifactKind { kBenchJson, kMetricsJsonl, kJournalJsonl };

/// Sniffs which artifact a file is: a bench JSON report (single object
/// with schema_version), a metrics JSONL dump, or a run journal.
[[nodiscard]] util::Result<ArtifactKind> DetectArtifactKind(
    const std::string& text);

struct DiffResult {
  std::string rendered;
  int64_t compared = 0;    // entries present on both sides
  int64_t flagged = 0;     // deltas beyond the threshold (either way)
  int64_t regressions = 0; // flagged deltas in the bad direction
};

/// Compares two artifacts of the same kind. `threshold` is relative
/// (0.25 = 25%). For bench reports the bad direction is ns/op growing;
/// for metrics and journals any flagged count delta is a regression
/// (the runs were supposed to be identical).
[[nodiscard]] util::Result<DiffResult> DiffArtifacts(const std::string& a,
                                                     const std::string& b,
                                                     double threshold);

// ---------------------------------------------------------------------------
// Bench JSON schema
// ---------------------------------------------------------------------------

/// The schema version the validator and diff understand. Bump when the
/// bench reporter's output shape changes incompatibly.
inline constexpr int64_t kBenchSchemaVersion = 1;

/// Validates a BENCH_<name>.json document: schema_version must equal
/// kBenchSchemaVersion; `name`, `git_sha`, `build_type` strings;
/// `cases` a non-empty array of {name, ns_per_op >= 0, iterations >= 1,
/// p50_ns <= p90_ns <= p99_ns}.
[[nodiscard]] util::Status ValidateBenchJson(const std::string& text);

// ---------------------------------------------------------------------------
// OpenMetrics validation (the `stats` frame / --stats-out body)
// ---------------------------------------------------------------------------

/// Structurally validates an OpenMetrics text exposition as produced by
/// obs::ExportOpenMetrics: every sample belongs to a preceding `# TYPE`
/// declaration of a known kind (counter/gauge/histogram/summary),
/// counter samples carry the `_total` suffix, histogram bucket counts
/// are cumulative (non-decreasing, `le="+Inf"` last), sample values
/// parse as numbers, and the document ends with `# EOF`.
[[nodiscard]] util::Status ValidateOpenMetrics(const std::string& text);

// ---------------------------------------------------------------------------
// Daemon journal aggregation (obsctl aggregate / tail)
// ---------------------------------------------------------------------------

/// One request's slice of a daemon journal, reassembled from the
/// `req.*` lifecycle events plus the `req.event`/`req.span` wrapper
/// lines that tee its request-scoped artifacts (DESIGN.md §15). The
/// extracted `journal_lines`/`span_lines` are the original bytes of the
/// per-request artifacts — what the byte-identity contract is checked
/// against.
struct RequestRollup {
  std::string id;
  std::string client;
  std::string status;  // req.end status; "" = never finished (in flight)
  int64_t accepted = 0;
  int64_t queries = 0;
  std::string digest;  // req.end records digest
  std::vector<std::string> journal_lines;  // unwrapped req.event payloads
  std::vector<std::string> span_lines;     // unwrapped req.span payloads
  /// AnalyzeJournal's registry contract over journal_lines (vacuously
  /// true when no telemetry was captured for the request).
  bool contract_ok = true;
};

struct DaemonAggregate {
  std::vector<RequestRollup> requests;  // first-seen order
  int64_t total_lines = 0;
  int64_t wrapper_events = 0;  // req.event + req.span lines
  bool has_daemon_start = false;
  bool has_daemon_exit = false;
  bool truncated_tail = false;

  bool AllContractsHold() const;
};

/// Splits a (possibly live, possibly truncated) daemon journal into
/// per-request rollups and runs the per-request contract checks.
[[nodiscard]] util::Result<DaemonAggregate> AggregateDaemonJournal(
    const std::string& jsonl_text);

/// Human-readable rollup table + contract verdicts (obsctl aggregate).
std::string RenderDaemonAggregate(const DaemonAggregate& aggregate);

/// One daemon-journal line rendered for `obsctl tail`: wrapper events
/// unwrap to `[<rid>] <original artifact line>`; every other line
/// passes through verbatim. Returns the rendered line WITHOUT a
/// trailing newline; unparseable lines pass through verbatim too (the
/// tail must never hide what the daemon wrote).
std::string RenderTailLine(const std::string& line);

}  // namespace chameleon::obsctl

#endif  // CHAMELEON_TOOLS_OBSCTL_ANALYSIS_H_
