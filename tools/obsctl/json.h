#ifndef CHAMELEON_TOOLS_OBSCTL_JSON_H_
#define CHAMELEON_TOOLS_OBSCTL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace chameleon::obsctl {

/// A parsed JSON value. Objects keep their fields in document order
/// (the run journal's field order is meaningful, and report goldens
/// must be stable). Numbers are doubles — the observability artifacts
/// only carry counts and timings that fit a double exactly.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                              // array
  std::vector<std::pair<std::string, JsonValue>> fields;     // object

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// First field with `key`, or nullptr (objects only).
  const JsonValue* Find(const std::string& key) const;

  /// Convenience getters with fallbacks for absent/mistyped fields.
  double NumberOr(const std::string& key, double fallback) const;
  int64_t IntOr(const std::string& key, int64_t fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
};

/// Parses one complete JSON document. Trailing whitespace is allowed;
/// any other trailing content is an error, so a truncated JSONL line
/// fails to parse (which is how the journal analyzer detects a killed
/// run's ragged tail).
[[nodiscard]] util::Result<JsonValue> ParseJson(const std::string& text);

}  // namespace chameleon::obsctl

#endif  // CHAMELEON_TOOLS_OBSCTL_JSON_H_
