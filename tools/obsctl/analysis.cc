#include "tools/obsctl/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/util/table_printer.h"

namespace chameleon::obsctl {
namespace {

/// Splits `text` into non-empty lines (the trailing newline of a JSONL
/// file yields no phantom line).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TargetStats* FindOrAddTarget(JournalStats* stats, const std::string& target) {
  for (auto& [name, entry] : stats->targets) {
    if (name == target) return &entry;
  }
  stats->targets.emplace_back(target, TargetStats{});
  return &stats->targets.back().second;
}

std::string Percent(double fraction) {
  return util::Fmt(100.0 * fraction, 1) + "%";
}

}  // namespace

util::Result<JsonlFile> ParseJsonl(const std::string& text) {
  JsonlFile file;
  const std::vector<std::string> lines = SplitLines(text);
  for (size_t i = 0; i < lines.size(); ++i) {
    auto value = ParseJson(lines[i]);
    if (!value.ok()) {
      if (i + 1 == lines.size()) {
        // A ragged final line is what a killed streaming run leaves
        // behind; drop it and analyze the intact prefix.
        file.truncated_tail = true;
        break;
      }
      return util::Status::InvalidArgument(
          "JSONL line " + std::to_string(i + 1) +
          " is malformed: " + value.status().message());
    }
    file.lines.push_back(std::move(*value));
  }
  return file;
}

int64_t JournalStats::TotalQueries() const {
  int64_t total = 0;
  for (const auto& [name, entry] : targets) total += entry.queries;
  return total;
}

int64_t JournalStats::TotalAccepted() const {
  int64_t total = 0;
  for (const auto& [name, entry] : targets) total += entry.accepted;
  return total;
}

int64_t JournalStats::TotalRejected() const {
  int64_t total = 0;
  for (const auto& [name, entry] : targets) total += entry.rejected();
  return total;
}

int64_t JournalStats::TotalParked() const {
  int64_t total = 0;
  for (const auto& [name, entry] : targets) total += entry.parked;
  return total;
}

int64_t JournalStats::TotalBoundaryParked() const {
  int64_t total = 0;
  for (const auto& [name, entry] : targets) total += entry.parked_boundary;
  return total;
}

int64_t JournalStats::TotalRetries() const {
  int64_t total = 0;
  for (const auto& [name, entry] : targets) total += entry.retries;
  return total;
}

bool JournalStats::ContractHolds() const {
  return TotalAccepted() + TotalRejected() == TotalQueries() - TotalParked();
}

util::Result<JournalStats> AnalyzeJournal(const std::string& jsonl_text) {
  auto file = ParseJsonl(jsonl_text);
  if (!file.ok()) return file.status();

  JournalStats stats;
  stats.truncated_tail = file->truncated_tail;
  std::string current_target;  // owner of fm.retry events (see below)
  for (const JsonValue& event : file->lines) {
    if (!event.is_object()) {
      return util::Status::InvalidArgument(
          "journal line is not a JSON object");
    }
    const std::string type = event.StringOr("type", "");
    if (type.empty()) {
      return util::Status::InvalidArgument(
          "journal line has no \"type\" field");
    }
    ++stats.total_events;
    ++stats.events_by_type[type];

    if (type == "run.start") {
      stats.has_run_start = true;
      stats.tau = event.IntOr("tau", 0);
      stats.seed = event.IntOr("seed", 0);
    } else if (type == "run.end") {
      stats.has_run_end = true;
      stats.end_queries = event.IntOr("queries", 0);
      stats.end_accepted = event.IntOr("accepted", 0);
      stats.end_parked = event.IntOr("parked", 0);
      stats.fully_resolved = event.BoolOr("fully_resolved", false);
    } else if (type == "plan.entry") {
      FindOrAddTarget(&stats, event.StringOr("target", "?"))->planned +=
          event.IntOr("count", 0);
    } else if (type == "fm.query") {
      const std::string target = event.StringOr("target", "?");
      TargetStats* entry = FindOrAddTarget(&stats, target);
      ++entry->queries;
      ++stats.arms[event.IntOr("arm", -1)].pulls;
      current_target = target;
    } else if (type == "fm.retry") {
      // Retries are journaled from inside the resilient client, between
      // an fm.query event and its verdict, so they belong to the most
      // recent query's target.
      if (!current_target.empty()) {
        ++FindOrAddTarget(&stats, current_target)->retries;
      }
    } else if (type == "fm.parked") {
      // Transport-failure parks ("Unavailable", "DeadlineExceeded", ...)
      // each cost one journaled-but-unevaluated query; round-boundary
      // parks from a cancel or an exhausted per-request deadline
      // ("cancelled" / "deadline_exceeded") lose no queries.
      const std::string code = event.StringOr("code", "");
      TargetStats* entry = FindOrAddTarget(&stats, event.StringOr("target",
                                                                  "?"));
      if (code == "cancelled" || code == "deadline_exceeded") {
        ++entry->parked_boundary;
      } else {
        ++entry->parked;
      }
    } else if (type == "tuple.accepted") {
      ++FindOrAddTarget(&stats, event.StringOr("target", "?"))->accepted;
      ++stats.arms[event.IntOr("arm", -1)].accepted;
    } else if (type == "tuple.rejected") {
      TargetStats* entry =
          FindOrAddTarget(&stats, event.StringOr("target", "?"));
      const std::string reason = event.StringOr("reason", "");
      if (reason == "quality") {
        ++entry->rejected_quality;
      } else if (reason == "both") {
        ++entry->rejected_both;
      } else {
        ++entry->rejected_distribution;
      }
      ++stats.arms[event.IntOr("arm", -1)].rejected;
    }
    // Other event types (mup.found, fm.breaker, ...) only feed
    // events_by_type.
  }
  return stats;
}

namespace {

/// A span line lifted out of JSON, keyed by (request id, span id).
struct ParsedSpan {
  std::string rid;
  int64_t id = 0;
  int64_t parent_id = 0;
  int recorded_depth = 0;
  std::string name;
  int64_t start_tick = 0;
  int64_t end_tick = 0;
};

}  // namespace

util::Result<std::vector<SpanRollup>> AnalyzeTrace(
    const std::string& jsonl_text, bool* truncated) {
  auto file = ParseJsonl(jsonl_text);
  if (!file.ok()) return file.status();
  if (truncated != nullptr) *truncated = file->truncated_tail;

  // Pass 1: collect spans keyed by (rid, id). Two concurrent requests
  // both number their spans from 1, so the id alone is ambiguous in a
  // combined artifact — the rid disambiguates. Duplicate records of one
  // key (a streamed file's catch-up write next to the final Write())
  // collapse to a single span, preferring the completed record.
  std::vector<ParsedSpan> spans;
  std::map<std::pair<std::string, int64_t>, size_t> by_key;
  for (const JsonValue& line : file->lines) {
    if (!line.is_object() || line.Find("name") == nullptr ||
        line.Find("start_tick") == nullptr) {
      return util::Status::InvalidArgument(
          "trace line is not a span record");
    }
    ParsedSpan span;
    span.rid = line.StringOr("rid", "");
    span.id = line.IntOr("id", 0);
    span.parent_id = line.IntOr("parent", line.IntOr("parent_id", 0));
    span.recorded_depth = static_cast<int>(line.IntOr("depth", 0));
    span.name = line.StringOr("name", "?");
    span.start_tick = line.IntOr("start_tick", 0);
    span.end_tick = line.IntOr("end_tick", 0);
    if (span.id != 0) {
      const auto key = std::make_pair(span.rid, span.id);
      auto it = by_key.find(key);
      if (it != by_key.end()) {
        ParsedSpan& existing = spans[it->second];
        if (existing.end_tick == 0 && span.end_tick != 0) existing = span;
        continue;
      }
      by_key.emplace(key, spans.size());
    }
    spans.push_back(std::move(span));
  }

  // Pass 2: depth from the parent chain *within the same request*. Only
  // a chain that fully resolves to a root is trusted; a missing link
  // (streamed partial file) falls back to the recorded depth.
  const auto chain_depth = [&](const ParsedSpan& span) {
    int depth = 0;
    int64_t cursor = span.parent_id;
    for (size_t guard = 0; cursor != 0 && guard <= spans.size(); ++guard) {
      auto it = by_key.find(std::make_pair(span.rid, cursor));
      if (it == by_key.end()) return span.recorded_depth;
      cursor = spans[it->second].parent_id;
      ++depth;
    }
    return cursor == 0 ? depth : span.recorded_depth;  // cycle = fallback
  };

  std::vector<SpanRollup> rollups;
  for (const ParsedSpan& span : spans) {
    const int depth = chain_depth(span);
    SpanRollup* rollup = nullptr;
    for (SpanRollup& candidate : rollups) {
      if (candidate.name == span.name) {
        rollup = &candidate;
        break;
      }
    }
    if (rollup == nullptr) {
      rollups.emplace_back();
      rollup = &rollups.back();
      rollup->name = span.name;
      rollup->depth = depth;
    }
    rollup->depth = std::min(rollup->depth, depth);
    if (span.end_tick == 0) {
      ++rollup->open;
      continue;
    }
    ++rollup->count;
    rollup->total_ticks += span.end_tick - span.start_tick;
    rollup->ticks.Add(static_cast<double>(span.end_tick - span.start_tick));
  }
  return rollups;
}

util::Result<std::map<std::string, MetricEntry>> AnalyzeMetrics(
    const std::string& jsonl_text) {
  auto file = ParseJsonl(jsonl_text);
  if (!file.ok()) return file.status();
  std::map<std::string, MetricEntry> metrics;
  for (const JsonValue& line : file->lines) {
    if (!line.is_object() || line.Find("name") == nullptr ||
        line.Find("type") == nullptr) {
      return util::Status::InvalidArgument(
          "metrics line is not a metric sample");
    }
    MetricEntry entry;
    entry.type = line.StringOr("type", "");
    entry.value = line.NumberOr("value", 0.0);
    metrics[line.StringOr("name", "?")] = entry;
  }
  return metrics;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

util::Result<Report> BuildReport(const ReportInput& input) {
  auto journal = AnalyzeJournal(input.journal_text);
  if (!journal.ok()) return journal.status();

  Report report;
  report.contract_ok = true;
  std::string& out = report.rendered;
  out += "== obsctl report ==\n";
  out += "journal events: " + util::Fmt(journal->total_events);
  if (journal->truncated_tail) {
    out += " (truncated tail: dropped 1 incomplete line)";
  }
  out += "\n";
  if (journal->has_run_start) {
    out += "run: tau=" + util::Fmt(journal->tau) +
           " seed=" + util::Fmt(journal->seed) + "\n";
  }
  const int64_t queries = journal->TotalQueries();
  const int64_t accepted = journal->TotalAccepted();
  const int64_t rejected = journal->TotalRejected();
  // Only transport-failure parks cost a journaled query; round-boundary
  // parks (cancel / per-request deadline) stop between rounds.
  const int64_t parked = journal->TotalParked();
  const int64_t boundary_parked = journal->TotalBoundaryParked();
  out += "totals: queries=" + util::Fmt(queries) +
         " evaluated=" + util::Fmt(queries - parked) +
         " accepted=" + util::Fmt(accepted) +
         " rejected=" + util::Fmt(rejected) +
         " parked=" + util::Fmt(parked + boundary_parked);
  if (boundary_parked > 0) {
    out += " (" + util::Fmt(boundary_parked) + " at round boundaries)";
  }
  out += " retries=" + util::Fmt(journal->TotalRetries()) + "\n";
  if (journal->has_run_end) {
    out += "run.end: queries=" + util::Fmt(journal->end_queries) +
           " accepted=" + util::Fmt(journal->end_accepted) +
           " parked_entries=" + util::Fmt(journal->end_parked) +
           " fully_resolved=" + (journal->fully_resolved ? "yes" : "no") +
           "\n";
  } else {
    out += "run.end: missing (run killed mid-way?)\n";
  }

  // Cross-checks against the registry contract. Every check that can
  // run (given the inputs provided) must pass for contract_ok.
  out += "\ncontract checks:\n";
  auto check = [&](const std::string& label, int64_t lhs, int64_t rhs) {
    const bool ok = lhs == rhs;
    report.contract_ok = report.contract_ok && ok;
    out += "  " + label + ": " + (ok ? "OK" : "VIOLATED") + " (" +
           util::Fmt(lhs) + " vs " + util::Fmt(rhs) + ")\n";
  };
  check("accepted+rejected == queries-parked", accepted + rejected,
        queries - parked);
  if (journal->has_run_end) {
    check("run.end.queries == queries-parked", journal->end_queries,
          queries - parked);
    check("run.end.accepted == accepted", journal->end_accepted, accepted);
  }
  if (!input.metrics_text.empty()) {
    auto metrics = AnalyzeMetrics(input.metrics_text);
    if (!metrics.ok()) return metrics.status();
    auto metric = [&](const std::string& name) -> int64_t {
      auto it = metrics->find(name);
      return it == metrics->end()
                 ? -1
                 : static_cast<int64_t>(it->second.value);
    };
    check("metrics fm.queries == journal fm.query", metric("fm.queries"),
          queries);
    check("metrics rejection.accepted == journal accepted",
          metric("rejection.accepted"), accepted);
    check("metrics rejection.rejected == journal rejected",
          metric("rejection.rejected"), rejected);
  }

  // Per-MUP (plan-entry) repair cost.
  out += "\n== per-MUP repair cost ==\n";
  util::TablePrinter targets({"target", "planned", "queries", "accepted",
                              "rej.dist", "rej.qual", "rej.both", "retries",
                              "parked"});
  TargetStats totals;
  for (const auto& [name, entry] : journal->targets) {
    targets.AddRow({name, util::Fmt(entry.planned), util::Fmt(entry.queries),
                    util::Fmt(entry.accepted),
                    util::Fmt(entry.rejected_distribution),
                    util::Fmt(entry.rejected_quality),
                    util::Fmt(entry.rejected_both), util::Fmt(entry.retries),
                    util::Fmt(entry.parked_total())});
    totals.planned += entry.planned;
    totals.queries += entry.queries;
    totals.accepted += entry.accepted;
    totals.rejected_distribution += entry.rejected_distribution;
    totals.rejected_quality += entry.rejected_quality;
    totals.rejected_both += entry.rejected_both;
    totals.retries += entry.retries;
    totals.parked += entry.parked;
    totals.parked_boundary += entry.parked_boundary;
  }
  targets.AddRow({"TOTAL", util::Fmt(totals.planned),
                  util::Fmt(totals.queries), util::Fmt(totals.accepted),
                  util::Fmt(totals.rejected_distribution),
                  util::Fmt(totals.rejected_quality),
                  util::Fmt(totals.rejected_both), util::Fmt(totals.retries),
                  util::Fmt(totals.parked_total())});
  out += targets.ToString();

  // Per-arm pull/reward summary.
  out += "\n== per-arm pulls/rewards ==\n";
  util::TablePrinter arms(
      {"arm", "pulls", "accepted", "rejected", "accept_rate"});
  for (const auto& [arm, entry] : journal->arms) {
    const int64_t verdicts = entry.accepted + entry.rejected;
    arms.AddRow({util::Fmt(arm), util::Fmt(entry.pulls),
                 util::Fmt(entry.accepted), util::Fmt(entry.rejected),
                 verdicts == 0 ? "-"
                               : Percent(static_cast<double>(entry.accepted) /
                                         static_cast<double>(verdicts))});
  }
  out += arms.ToString();

  // Span-tree latency rollup.
  if (!input.trace_text.empty()) {
    bool trace_truncated = false;
    auto rollups = AnalyzeTrace(input.trace_text, &trace_truncated);
    if (!rollups.ok()) return rollups.status();
    out += "\n== span latency rollup (virtual ticks) ==\n";
    if (trace_truncated) {
      out += "(truncated tail: dropped 1 incomplete line)\n";
    }
    util::TablePrinter spans({"span", "count", "open", "total", "mean",
                              "p50", "p90", "p99"});
    for (const SpanRollup& rollup : *rollups) {
      const std::string indent(static_cast<size_t>(rollup.depth) * 2, ' ');
      const double mean =
          rollup.count == 0
              ? 0.0
              : static_cast<double>(rollup.total_ticks) /
                    static_cast<double>(rollup.count);
      spans.AddRow({indent + rollup.name, util::Fmt(rollup.count),
                    util::Fmt(rollup.open), util::Fmt(rollup.total_ticks),
                    util::Fmt(mean, 1), util::Fmt(rollup.ticks.Quantile(0.5), 1),
                    util::Fmt(rollup.ticks.Quantile(0.9), 1),
                    util::Fmt(rollup.ticks.Quantile(0.99), 1)});
    }
    out += spans.ToString();
  }
  return report;
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

util::Result<ArtifactKind> DetectArtifactKind(const std::string& text) {
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.empty()) {
    return util::Status::InvalidArgument("empty artifact");
  }
  // A bench report is one multi-line JSON object; its first line alone
  // does not parse, or parses without the telltale JSONL fields.
  auto whole = ParseJson(text);
  if (whole.ok() && whole->is_object() &&
      whole->Find("schema_version") != nullptr) {
    return ArtifactKind::kBenchJson;
  }
  auto first = ParseJson(lines[0]);
  if (first.ok() && first->is_object()) {
    if (first->Find("tick") != nullptr) return ArtifactKind::kJournalJsonl;
    if (first->Find("value") != nullptr && first->Find("type") != nullptr) {
      return ArtifactKind::kMetricsJsonl;
    }
  }
  return util::Status::InvalidArgument(
      "unrecognized artifact (expected bench JSON, metrics JSONL, or a run "
      "journal)");
}

namespace {

struct NamedValues {
  std::vector<std::pair<std::string, double>> entries;  // insertion order

  const double* Find(const std::string& name) const {
    for (const auto& [key, value] : entries) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

/// Generic compare of two name→value sets. `bad_direction` +1 flags
/// growth as a regression, -1 shrink, 0 any flagged change.
DiffResult DiffNamedValues(const NamedValues& a, const NamedValues& b,
                           double threshold, int bad_direction,
                           const std::string& value_header,
                           int value_decimals) {
  DiffResult result;
  util::TablePrinter table(
      {"name", "base " + value_header, "new " + value_header, "delta",
       "verdict"});
  for (const auto& [name, base] : a.entries) {
    const double* current = b.Find(name);
    if (current == nullptr) {
      table.AddRow({name, util::Fmt(base, value_decimals), "-", "-",
                    "only in base"});
      continue;
    }
    ++result.compared;
    const double delta = *current - base;
    const double relative =
        base != 0.0 ? delta / std::fabs(base)
                    : (delta == 0.0 ? 0.0 : (delta > 0 ? 1e9 : -1e9));
    const bool flagged = std::fabs(relative) > threshold;
    std::string verdict = "ok";
    if (flagged) {
      ++result.flagged;
      const bool bad = bad_direction == 0 ||
                       (bad_direction > 0 ? delta > 0 : delta < 0);
      if (bad) {
        ++result.regressions;
        verdict = "REGRESSION";
      } else {
        verdict = "improved";
      }
    }
    std::string signed_delta = Percent(relative);
    if (delta >= 0) signed_delta.insert(0, "+");
    table.AddRow({name, util::Fmt(base, value_decimals),
                  util::Fmt(*current, value_decimals), signed_delta,
                  verdict});
  }
  for (const auto& [name, current] : b.entries) {
    if (a.Find(name) == nullptr) {
      table.AddRow({name, "-", util::Fmt(current, value_decimals), "-",
                    "only in new"});
    }
  }
  result.rendered = table.ToString();
  return result;
}

util::Result<NamedValues> BenchCaseValues(const std::string& text) {
  CHAMELEON_RETURN_NOT_OK(ValidateBenchJson(text));
  auto doc = ParseJson(text);
  if (!doc.ok()) return doc.status();
  NamedValues values;
  for (const JsonValue& entry : doc->Find("cases")->items) {
    // Sub-microsecond cases are where scheduler noise on a loaded
    // 1-vCPU host dwarfs the measurement: even the min-over-repetitions
    // ns_per_op flakes there. Gate those on the repetition median
    // (p50_ns, present in every schema-v1 report) instead; above 1 µs
    // the min remains the least-noisy estimator.
    const double ns_per_op = entry.NumberOr("ns_per_op", 0.0);
    const double gated =
        ns_per_op < 1000.0 ? entry.NumberOr("p50_ns", ns_per_op) : ns_per_op;
    values.entries.emplace_back(entry.StringOr("name", "?"), gated);
  }
  return values;
}

util::Result<NamedValues> MetricValues(const std::string& text) {
  auto metrics = AnalyzeMetrics(text);
  if (!metrics.ok()) return metrics.status();
  NamedValues values;
  for (const auto& [name, entry] : *metrics) {
    values.entries.emplace_back(name, entry.value);
  }
  return values;
}

util::Result<NamedValues> JournalEventCounts(const std::string& text) {
  auto journal = AnalyzeJournal(text);
  if (!journal.ok()) return journal.status();
  NamedValues values;
  for (const auto& [type, count] : journal->events_by_type) {
    values.entries.emplace_back(type, static_cast<double>(count));
  }
  return values;
}

}  // namespace

util::Result<DiffResult> DiffArtifacts(const std::string& a,
                                       const std::string& b,
                                       double threshold) {
  auto kind_a = DetectArtifactKind(a);
  if (!kind_a.ok()) return kind_a.status();
  auto kind_b = DetectArtifactKind(b);
  if (!kind_b.ok()) return kind_b.status();
  if (*kind_a != *kind_b) {
    return util::Status::InvalidArgument(
        "cannot diff artifacts of different kinds");
  }

  DiffResult result;
  std::string header;
  if (*kind_a == ArtifactKind::kBenchJson) {
    auto values_a = BenchCaseValues(a);
    if (!values_a.ok()) return values_a.status();
    auto values_b = BenchCaseValues(b);
    if (!values_b.ok()) return values_b.status();
    header = "bench ns/op";
    result = DiffNamedValues(*values_a, *values_b, threshold,
                             /*bad_direction=*/1, "ns/op", 1);
  } else if (*kind_a == ArtifactKind::kMetricsJsonl) {
    auto values_a = MetricValues(a);
    if (!values_a.ok()) return values_a.status();
    auto values_b = MetricValues(b);
    if (!values_b.ok()) return values_b.status();
    header = "metrics";
    result = DiffNamedValues(*values_a, *values_b, threshold,
                             /*bad_direction=*/0, "value", 3);
  } else {
    auto values_a = JournalEventCounts(a);
    if (!values_a.ok()) return values_a.status();
    auto values_b = JournalEventCounts(b);
    if (!values_b.ok()) return values_b.status();
    header = "journal event counts";
    result = DiffNamedValues(*values_a, *values_b, threshold,
                             /*bad_direction=*/0, "count", 0);
  }
  result.rendered =
      "== obsctl diff (" + header + ", threshold " +
      Percent(threshold) + ") ==\n" + result.rendered + "compared=" +
      util::Fmt(result.compared) + " flagged=" + util::Fmt(result.flagged) +
      " regressions=" + util::Fmt(result.regressions) + "\n";
  return result;
}

// ---------------------------------------------------------------------------
// Bench JSON schema
// ---------------------------------------------------------------------------

util::Status ValidateBenchJson(const std::string& text) {
  auto doc = ParseJson(text);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return util::Status::InvalidArgument("bench report must be an object");
  }
  const JsonValue* version = doc->Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return util::Status::InvalidArgument("missing numeric schema_version");
  }
  if (static_cast<int64_t>(version->number_value) != kBenchSchemaVersion) {
    return util::Status::InvalidArgument(
        "unsupported schema_version (expected " +
        std::to_string(kBenchSchemaVersion) + ")");
  }
  for (const char* key : {"name", "git_sha", "build_type"}) {
    const JsonValue* field = doc->Find(key);
    if (field == nullptr || !field->is_string() ||
        field->string_value.empty()) {
      return util::Status::InvalidArgument(
          std::string("missing or empty string field: ") + key);
    }
  }
  const JsonValue* cases = doc->Find("cases");
  if (cases == nullptr || !cases->is_array() || cases->items.empty()) {
    return util::Status::InvalidArgument("cases must be a non-empty array");
  }
  for (size_t i = 0; i < cases->items.size(); ++i) {
    const JsonValue& entry = cases->items[i];
    const std::string where = "cases[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return util::Status::InvalidArgument(where + " is not an object");
    }
    const JsonValue* name = entry.Find("name");
    if (name == nullptr || !name->is_string() || name->string_value.empty()) {
      return util::Status::InvalidArgument(where + " has no name");
    }
    const JsonValue* ns = entry.Find("ns_per_op");
    if (ns == nullptr || !ns->is_number() || ns->number_value < 0.0) {
      return util::Status::InvalidArgument(
          where + " needs ns_per_op >= 0");
    }
    if (entry.IntOr("iterations", 0) < 1) {
      return util::Status::InvalidArgument(
          where + " needs iterations >= 1");
    }
    const double p50 = entry.NumberOr("p50_ns", -1.0);
    const double p90 = entry.NumberOr("p90_ns", -1.0);
    const double p99 = entry.NumberOr("p99_ns", -1.0);
    if (p50 < 0.0 || p90 < 0.0 || p99 < 0.0 || p50 > p90 || p90 > p99) {
      return util::Status::InvalidArgument(
          where + " needs ordered digest percentiles p50_ns <= p90_ns <= "
                  "p99_ns");
    }
  }
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// OpenMetrics validation
// ---------------------------------------------------------------------------

namespace {

/// Strips `{label="..."}` from a sample line; returns the bare metric
/// name (empty = malformed).
std::string SampleMetricName(const std::string& line, std::string* labels) {
  const size_t brace = line.find('{');
  const size_t space = line.find(' ');
  if (space == std::string::npos) return "";
  if (brace != std::string::npos && brace < space) {
    const size_t close = line.find('}', brace);
    if (close == std::string::npos || close > space) return "";
    if (labels != nullptr) *labels = line.substr(brace + 1, close - brace - 1);
    return line.substr(0, brace);
  }
  if (labels != nullptr) labels->clear();
  return line.substr(0, space);
}

bool ParseSampleValue(const std::string& line, double* value) {
  const size_t space = line.rfind(' ');
  if (space == std::string::npos || space + 1 >= line.size()) return false;
  const std::string text = line.substr(space + 1);
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

util::Status ValidateOpenMetrics(const std::string& text) {
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.empty()) {
    return util::Status::InvalidArgument("empty OpenMetrics document");
  }
  if (lines.back() != "# EOF") {
    return util::Status::InvalidArgument(
        "OpenMetrics document must end with '# EOF'");
  }
  std::map<std::string, std::string> declared;  // metric -> kind
  std::string bucket_metric;  // histogram currently mid-bucket-sequence
  double bucket_cumulative = 0.0;
  bool bucket_saw_inf = false;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::string where = "line " + std::to_string(i + 1);
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string::npos) {
        return util::Status::InvalidArgument(where +
                                             ": malformed TYPE comment");
      }
      const std::string name = rest.substr(0, space);
      const std::string kind = rest.substr(space + 1);
      if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
          kind != "summary") {
        return util::Status::InvalidArgument(
            where + ": unknown metric kind '" + kind + "'");
      }
      if (!declared.emplace(name, kind).second) {
        return util::Status::InvalidArgument(
            where + ": metric '" + name + "' declared twice");
      }
      continue;
    }
    if (line.rfind('#', 0) == 0) {
      return util::Status::InvalidArgument(where + ": unexpected comment");
    }
    std::string labels;
    const std::string sample = SampleMetricName(line, &labels);
    if (sample.empty()) {
      return util::Status::InvalidArgument(where + ": malformed sample");
    }
    double value = 0.0;
    if (!ParseSampleValue(line, &value)) {
      return util::Status::InvalidArgument(where +
                                           ": sample value is not a number");
    }
    // Resolve the sample back to its declaration: exact name (gauges,
    // summaries), or name + conventional suffix (counters' _total,
    // histograms' _bucket/_sum/_count).
    std::string metric = sample;
    std::string suffix;
    auto it = declared.find(metric);
    if (it == declared.end()) {
      const size_t underscore = sample.rfind('_');
      if (underscore != std::string::npos) {
        metric = sample.substr(0, underscore);
        suffix = sample.substr(underscore + 1);
        it = declared.find(metric);
      }
    }
    if (it == declared.end()) {
      return util::Status::InvalidArgument(
          where + ": sample '" + sample + "' has no TYPE declaration");
    }
    const std::string& kind = it->second;
    if (kind == "counter" && suffix != "total") {
      return util::Status::InvalidArgument(
          where + ": counter sample must use the _total suffix");
    }
    if (kind == "histogram" && suffix != "bucket" && suffix != "sum" &&
        suffix != "count") {
      return util::Status::InvalidArgument(
          where + ": histogram sample needs a _bucket/_sum/_count suffix");
    }
    // Cumulative-bucket discipline, per histogram bucket run.
    const bool is_bucket = kind == "histogram" && suffix == "bucket";
    if (!is_bucket || metric != bucket_metric) {
      bucket_metric.clear();
      bucket_cumulative = 0.0;
      bucket_saw_inf = false;
    }
    if (is_bucket) {
      if (bucket_saw_inf && metric == bucket_metric) {
        return util::Status::InvalidArgument(
            where + ": bucket after le=\"+Inf\"");
      }
      if (!bucket_metric.empty() && value < bucket_cumulative) {
        return util::Status::InvalidArgument(
            where + ": bucket counts must be cumulative");
      }
      bucket_metric = metric;
      bucket_cumulative = value;
      if (labels.find("le=\"+Inf\"") != std::string::npos) {
        bucket_saw_inf = true;
      }
    }
  }
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// Daemon journal aggregation
// ---------------------------------------------------------------------------

bool DaemonAggregate::AllContractsHold() const {
  for (const RequestRollup& request : requests) {
    if (!request.contract_ok) return false;
  }
  return true;
}

namespace {

RequestRollup* FindOrAddRequest(DaemonAggregate* aggregate,
                                const std::string& id) {
  for (RequestRollup& request : aggregate->requests) {
    if (request.id == id) return &request;
  }
  aggregate->requests.emplace_back();
  aggregate->requests.back().id = id;
  return &aggregate->requests.back();
}

}  // namespace

util::Result<DaemonAggregate> AggregateDaemonJournal(
    const std::string& jsonl_text) {
  auto file = ParseJsonl(jsonl_text);
  if (!file.ok()) return file.status();

  DaemonAggregate aggregate;
  aggregate.truncated_tail = file->truncated_tail;
  for (const JsonValue& event : file->lines) {
    if (!event.is_object()) {
      return util::Status::InvalidArgument(
          "daemon journal line is not a JSON object");
    }
    ++aggregate.total_lines;
    const std::string type = event.StringOr("type", "");
    if (type == "daemon.start") {
      aggregate.has_daemon_start = true;
    } else if (type == "daemon.exit") {
      aggregate.has_daemon_exit = true;
    } else if (type == "req.accepted") {
      RequestRollup* request =
          FindOrAddRequest(&aggregate, event.StringOr("id", "?"));
      request->client = event.StringOr("client", "");
    } else if (type == "req.end") {
      RequestRollup* request =
          FindOrAddRequest(&aggregate, event.StringOr("id", "?"));
      request->status = event.StringOr("status", "?");
      request->accepted = event.IntOr("accepted", 0);
      request->queries = event.IntOr("queries", 0);
      request->digest = event.StringOr("digest", "");
    } else if (type == "req.event" || type == "req.span") {
      // Wrapper events (DESIGN.md §15): `line` carries the request's
      // original artifact line byte-for-byte (only JSON string escaping
      // in between, undone by the parser here).
      const std::string rid = event.StringOr("rid", "");
      const std::string inner = event.StringOr("line", "");
      if (rid.empty() || inner.empty()) {
        return util::Status::InvalidArgument(
            "wrapper event is missing rid/line");
      }
      ++aggregate.wrapper_events;
      RequestRollup* request = FindOrAddRequest(&aggregate, rid);
      if (type == "req.event") {
        request->journal_lines.push_back(inner);
      } else {
        request->span_lines.push_back(inner);
      }
    }
    // req.start / req.cancel / req.resumed / proto.* / io.error only
    // count toward total_lines.
  }

  // Per-request contract checks over the reassembled journals.
  for (RequestRollup& request : aggregate.requests) {
    if (request.journal_lines.empty()) continue;
    std::string joined;
    for (const std::string& line : request.journal_lines) {
      joined += line;
      joined += '\n';
    }
    auto stats = AnalyzeJournal(joined);
    request.contract_ok = stats.ok() && stats->ContractHolds();
  }
  return aggregate;
}

std::string RenderDaemonAggregate(const DaemonAggregate& aggregate) {
  std::string out = "== obsctl aggregate ==\n";
  out += "daemon journal lines: " + util::Fmt(aggregate.total_lines);
  if (aggregate.truncated_tail) {
    out += " (truncated tail: dropped 1 incomplete line)";
  }
  out += "\n";
  out += "lifecycle: start=" +
         std::string(aggregate.has_daemon_start ? "yes" : "no") +
         " exit=" + (aggregate.has_daemon_exit ? "yes" : "no") +
         " wrapper_events=" + util::Fmt(aggregate.wrapper_events) + "\n";
  util::TablePrinter table({"request", "client", "status", "accepted",
                            "queries", "events", "spans", "contract",
                            "digest"});
  for (const RequestRollup& request : aggregate.requests) {
    table.AddRow({request.id, request.client,
                  request.status.empty() ? "(in flight)" : request.status,
                  util::Fmt(request.accepted), util::Fmt(request.queries),
                  util::Fmt(request.journal_lines.size()),
                  util::Fmt(request.span_lines.size()),
                  request.contract_ok ? "OK" : "VIOLATED",
                  request.digest.empty() ? "-" : request.digest});
  }
  out += table.ToString();
  return out;
}

std::string RenderTailLine(const std::string& line) {
  auto event = ParseJson(line);
  if (!event.ok() || !event->is_object()) return line;
  const std::string type = event->StringOr("type", "");
  if (type != "req.event" && type != "req.span") return line;
  const std::string rid = event->StringOr("rid", "");
  const std::string inner = event->StringOr("line", "");
  if (rid.empty() || inner.empty()) return line;
  return "[" + rid + "] " + inner;
}

}  // namespace chameleon::obsctl
