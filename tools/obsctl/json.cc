#include "tools/obsctl/json.h"

#include <cctype>
#include <cstdlib>

namespace chameleon::obsctl {
namespace {

/// Recursive-descent parser over a string view with position tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  util::Result<JsonValue> Parse() {
    JsonValue value;
    CHAMELEON_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  util::Status Error(const std::string& message) const {
    return util::Status::InvalidArgument(
        message + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return util::Status::Ok();
  }

  bool ConsumeLiteral(const char* literal) {
    size_t i = 0;
    while (literal[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != literal[i]) {
        return false;
      }
      ++i;
    }
    pos_ += i;
    return true;
  }

  util::Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("JSON nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeLiteral("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return util::Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return util::Status::Ok();
    }
    if (ConsumeLiteral("null")) {
      out->kind = JsonValue::Kind::kNull;
      return util::Status::Ok();
    }
    return ParseNumber(out);
  }

  util::Status ParseObject(JsonValue* out, int depth) {
    CHAMELEON_RETURN_NOT_OK(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return util::Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      CHAMELEON_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      CHAMELEON_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      CHAMELEON_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return util::Status::Ok();
      CHAMELEON_RETURN_NOT_OK(Expect(','));
    }
  }

  util::Status ParseArray(JsonValue* out, int depth) {
    CHAMELEON_RETURN_NOT_OK(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return util::Status::Ok();
    while (true) {
      JsonValue value;
      CHAMELEON_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return util::Status::Ok();
      CHAMELEON_RETURN_NOT_OK(Expect(','));
    }
  }

  util::Status ParseString(std::string* out) {
    CHAMELEON_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return util::Status::Ok();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // The journal only \u-escapes control characters; anything
          // beyond Latin-1 degrades to '?' rather than growing a full
          // UTF-16 decoder here.
          *out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  util::Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return util::Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

int64_t JsonValue::IntOr(const std::string& key, int64_t fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number()
             ? static_cast<int64_t>(value->number_value)
             : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string_value
                                                : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_bool() ? value->bool_value : fallback;
}

util::Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace chameleon::obsctl
