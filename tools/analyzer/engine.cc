#include "tools/analyzer/engine.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <iterator>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "tools/analyzer/index.h"
#include "tools/analyzer/token.h"

namespace chameleon_lint {
namespace {

/// Runs `work(i)` for i in [0, count). With jobs > 1, worker threads
/// pull indices from an atomic counter; each index writes only to its
/// own pre-sized slot, so no locking is needed anywhere in the engine —
/// determinism comes from merging the slots serially afterwards.
void RunIndexed(int jobs, size_t count,
                const std::function<void(size_t)>& work) {
  if (jobs <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) work(i);
    return;
  }
  const size_t workers =
      std::min<size_t>(static_cast<size_t>(jobs), count);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const size_t i = cursor.fetch_add(1);
        if (i >= count) return;
        work(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

EngineResult AnalyzeSources(std::vector<SourceFile> files,
                            const EngineOptions& options) {
  // Canonical order up front: every later stage walks files by index, so
  // the result is independent of both input order and --jobs.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  const size_t n = files.size();
  IndexOptions index_options;
  index_options.determinism_allowlist = options.lint.determinism_allowlist;

  // Pass 1 (parallel): lex, per-file registry, per-file index.
  std::vector<LexResult> lexes(n);
  std::vector<FunctionRegistry> registries(n);
  std::vector<FileIndex> indices(n);
  RunIndexed(options.jobs, n, [&](size_t i) {
    lexes[i] = Lex(files[i].source);
    CollectFunctions(lexes[i], &registries[i]);
    indices[i] = BuildFileIndex(files[i].path, lexes[i], index_options);
  });

  // Serial merge: the cross-file registry and the tree index.
  FunctionRegistry registry;
  if (options.seed_project_apis) SeedProjectStatusApis(&registry);
  for (const FunctionRegistry& r : registries) registry.Merge(r);
  std::vector<const FileIndex*> index_ptrs;
  index_ptrs.reserve(n);
  for (const FileIndex& index : indices) index_ptrs.push_back(&index);
  const TreeIndex tree = BuildTreeIndex(index_ptrs);

  // Pass 2 (parallel): per-file rules into per-file slots.
  std::vector<std::vector<Finding>> slots(n);
  RunIndexed(options.jobs, n, [&](size_t i) {
    slots[i] = LintFile(files[i].path, files[i].source, lexes[i], registry,
                        options.lint);
    if (!options.lint.IsDisabled("lock-discipline")) {
      CheckLockDiscipline(files[i].path, lexes[i], indices[i], tree,
                          &slots[i]);
    }
  });

  // Pass 2 (serial): tree-level rules.
  std::map<std::string, const LexResult*> lex_by_file;
  for (size_t i = 0; i < n; ++i) lex_by_file[files[i].path] = &lexes[i];
  std::vector<Finding> tree_findings;
  if (!options.lint.IsDisabled("lock-order")) {
    CheckLockOrder(tree, lex_by_file, &tree_findings);
  }
  if (!options.lint.IsDisabled("determinism-taint")) {
    CheckDeterminismTaint(tree, lex_by_file, &tree_findings);
  }

  // Pass 3: deterministic merge, then the baseline filter.
  EngineResult result;
  result.files_analyzed = n;
  for (std::vector<Finding>& slot : slots) {
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(slot.begin()),
                           std::make_move_iterator(slot.end()));
  }
  result.findings.insert(result.findings.end(),
                         std::make_move_iterator(tree_findings.begin()),
                         std::make_move_iterator(tree_findings.end()));
  std::sort(result.findings.begin(), result.findings.end());
  if (!options.baseline.empty()) {
    std::vector<Finding> kept;
    kept.reserve(result.findings.size());
    for (Finding& finding : result.findings) {
      if (options.baseline.count(BaselineKey(finding)) > 0) {
        ++result.baseline_suppressed;
      } else {
        kept.push_back(std::move(finding));
      }
    }
    result.findings = std::move(kept);
  }
  return result;
}

std::string BaselineKey(const Finding& finding) {
  return finding.file + "|" + finding.rule + "|" + finding.message;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& finding : findings) keys.insert(BaselineKey(finding));
  std::string out =
      "# chameleon-lint baseline: known findings tolerated by CI.\n"
      "# One `file|rule|message` key per line (line/column-free so the\n"
      "# baseline survives unrelated edits). Regenerate with\n"
      "#   chameleon-lint --write-baseline=<this file>\n"
      "# and shrink it whenever you fix an entry.\n";
  for (const std::string& key : keys) {
    out += key;
    out += '\n';
  }
  return out;
}

std::set<std::string> ParseBaseline(const std::string& text) {
  std::set<std::string> keys;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    keys.insert(line.substr(start));
  }
  return keys;
}

namespace {

std::vector<std::string> SplitLines(const std::string& source) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

}  // namespace

std::string ApplyFixes(const std::string& path, const std::string& source,
                       const std::vector<Finding>& findings, size_t* applied) {
  *applied = 0;
  const Finding* guard_fix = nullptr;
  std::vector<int> nolint_lines;
  for (const Finding& finding : findings) {
    if (finding.file != path) continue;
    if (finding.fix == FixKind::kRewriteGuard && guard_fix == nullptr) {
      guard_fix = &finding;
    } else if (finding.fix == FixKind::kInsertNolint) {
      nolint_lines.push_back(finding.line);
    }
  }
  if (guard_fix == nullptr && nolint_lines.empty()) return source;

  const bool had_trailing_newline = !source.empty() && source.back() == '\n';
  std::vector<std::string> lines = SplitLines(source);

  if (guard_fix != nullptr) {
    // The finding only carries a fix when an #ifndef/#define pair exists;
    // locate it (and the final #endif) from a fresh lex of this source.
    const LexResult lex = Lex(source);
    if (lex.directives.size() >= 2) {
      const std::string& guard = guard_fix->fix_data;
      const int ifndef_line = lex.directives[0].line;
      const int define_line = lex.directives[1].line;
      if (ifndef_line >= 1 && static_cast<size_t>(ifndef_line) <= lines.size() &&
          define_line >= 1 && static_cast<size_t>(define_line) <= lines.size()) {
        lines[ifndef_line - 1] = "#ifndef " + guard;
        lines[define_line - 1] = "#define " + guard;
        for (size_t i = lines.size(); i > 0; --i) {
          const std::string& line = lines[i - 1];
          const size_t start = line.find_first_not_of(" \t");
          if (start != std::string::npos &&
              line.compare(start, 6, "#endif") == 0) {
            lines[i - 1] = "#endif  // " + guard;
            break;
          }
        }
        ++*applied;
      }
    }
  }

  // Insert suppressions bottom-up so earlier line numbers stay valid.
  std::sort(nolint_lines.begin(), nolint_lines.end());
  nolint_lines.erase(std::unique(nolint_lines.begin(), nolint_lines.end()),
                     nolint_lines.end());
  for (auto it = nolint_lines.rbegin(); it != nolint_lines.rend(); ++it) {
    const int line = *it;
    if (line < 1 || static_cast<size_t>(line) > lines.size()) continue;
    const std::string& target = lines[line - 1];
    const size_t indent_end = target.find_first_not_of(" \t");
    const std::string indent =
        indent_end == std::string::npos ? "" : target.substr(0, indent_end);
    lines.insert(lines.begin() + (line - 1),
                 indent +
                     "// NOLINTNEXTLINE(chameleon-status-discipline) "
                     "TODO: use this result or delete the call.");
    ++*applied;
  }

  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  if (!had_trailing_newline && !out.empty()) out.pop_back();
  return out;
}

}  // namespace chameleon_lint
