#ifndef CHAMELEON_TOOLS_ANALYZER_RULES_H_
#define CHAMELEON_TOOLS_ANALYZER_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/analyzer/token.h"

namespace chameleon_lint {

/// One diagnostic. `rule` is the bare rule name (no "chameleon-" prefix);
/// FormatFinding prints the canonical `file:line:col: [chameleon-rule] msg`.
struct Finding {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (col != other.col) return col < other.col;
    return rule < other.rule;
  }
};

std::string FormatFinding(const Finding& finding);

struct RuleInfo {
  const char* name;  // bare name, e.g. "status-discipline"
  const char* description;
};

/// All rules, in reporting order. Used by --list-rules and --disable
/// validation.
const std::vector<RuleInfo>& Rules();

/// Name-indexed knowledge about functions declared across the scanned
/// tree. chameleon-lint has no type resolution, so a name declared both
/// with a Status/Result return and with some other return type is
/// *ambiguous* and never flagged; keeping project APIs unambiguous is
/// itself part of the discipline (see DESIGN.md).
struct FunctionRegistry {
  std::set<std::string> status_returning;
  std::set<std::string> other_returning;
  /// Names whose return value *is* the product of the call — RAII handles
  /// and registry lookups (obs::Tracer::StartSpan, obs::Registry's
  /// Counter/Gauge/Histogram). Discarding one is flagged regardless of the
  /// status/other ambiguity machinery: a discarded Span ends immediately,
  /// and a discarded instrument pointer records nothing.
  std::set<std::string> must_use;

  bool IsUnambiguousStatus(const std::string& name) const {
    return status_returning.count(name) > 0 && other_returning.count(name) == 0;
  }
  bool IsMustUse(const std::string& name) const {
    return must_use.count(name) > 0;
  }
};

/// Pass 1: records every function declaration/definition at namespace or
/// class scope into `registry`, split by whether the return type mentions
/// Status/Result.
void CollectFunctions(const LexResult& lex, FunctionRegistry* registry);

/// Seeds the registry with the project's known Status/Result-returning
/// API names (the foundation-model resilience surface among them), so a
/// discarded call is flagged even in a translation unit that never sees
/// the declaration. Names that the scan later also finds with a
/// non-Status return become ambiguous and drop out, as usual.
void SeedProjectStatusApis(FunctionRegistry* registry);

struct LintOptions {
  /// Bare rule names to skip (accepts the "chameleon-" prefix too).
  std::set<std::string> disabled;
  /// Files whose (normalized, relative) path contains one of these
  /// substrings are exempt from the determinism rule: wall-clock reads
  /// are the whole point of a stopwatch, and bench harnesses time things.
  std::vector<std::string> determinism_allowlist = {"util/stopwatch",
                                                    "bench/"};

  bool IsDisabled(const std::string& rule) const {
    return disabled.count(rule) > 0;
  }
};

/// Pass 2: runs every enabled rule over one file. `path` must be the
/// repo-relative, '/'-separated path — header-guard expectations and the
/// determinism allowlist key off it.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& source, const LexResult& lex,
                              const FunctionRegistry& registry,
                              const LintOptions& options);

/// The include-guard symbol the project convention demands for a header
/// at `path` (repo-relative): CHAMELEON_<DIR>_<FILE>_H_ with a leading
/// "src/" dropped. Exposed for tests.
std::string ExpectedGuard(const std::string& path);

}  // namespace chameleon_lint

#endif  // CHAMELEON_TOOLS_ANALYZER_RULES_H_
