#ifndef CHAMELEON_TOOLS_ANALYZER_RULES_H_
#define CHAMELEON_TOOLS_ANALYZER_RULES_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyzer/index.h"
#include "tools/analyzer/token.h"

namespace chameleon_lint {

/// Mechanical remediation attached to a finding (--fix mode). Only two
/// finding shapes are safely auto-fixable; everything else needs a
/// human.
enum class FixKind {
  kNone,
  /// Header guard exists but names the wrong symbol: rewrite the
  /// #ifndef/#define pair (and the trailing #endif comment) to
  /// `fix_data`.
  kRewriteGuard,
  /// Discarded must-use handle: insert a NOLINTNEXTLINE suppression
  /// with a TODO above the statement.
  kInsertNolint,
};

/// One diagnostic. `rule` is the bare rule name (no "chameleon-" prefix);
/// FormatFinding prints the canonical `file:line:col: [chameleon-rule] msg`.
struct Finding {
  Finding() = default;
  Finding(std::string file_in, int line_in, int col_in, std::string rule_in,
          std::string message_in, FixKind fix_in = FixKind::kNone,
          std::string fix_data_in = "")
      : file(std::move(file_in)),
        line(line_in),
        col(col_in),
        rule(std::move(rule_in)),
        message(std::move(message_in)),
        fix(fix_in),
        fix_data(std::move(fix_data_in)) {}

  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
  FixKind fix = FixKind::kNone;
  std::string fix_data;  // kRewriteGuard: the expected guard symbol

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (col != other.col) return col < other.col;
    return rule < other.rule;
  }
};

std::string FormatFinding(const Finding& finding);

struct RuleInfo {
  const char* name;  // bare name, e.g. "status-discipline"
  const char* description;
};

/// All rules, in reporting order. Used by --list-rules, --disable
/// validation, and the SARIF rules table.
const std::vector<RuleInfo>& Rules();

/// Name-indexed knowledge about functions declared across the scanned
/// tree. chameleon-lint has no type resolution, so a name declared both
/// with a Status/Result return and with some other return type is
/// *ambiguous* and never flagged; keeping project APIs unambiguous is
/// itself part of the discipline (see DESIGN.md).
struct FunctionRegistry {
  std::set<std::string> status_returning;
  std::set<std::string> other_returning;
  /// Names whose return value *is* the product of the call — RAII handles
  /// and registry lookups (obs::Tracer::StartSpan, obs::Registry's
  /// Counter/Gauge/Histogram). Discarding one is flagged regardless of the
  /// status/other ambiguity machinery: a discarded Span ends immediately,
  /// and a discarded instrument pointer records nothing.
  std::set<std::string> must_use;

  bool IsUnambiguousStatus(const std::string& name) const {
    return status_returning.count(name) > 0 && other_returning.count(name) == 0;
  }
  bool IsMustUse(const std::string& name) const {
    return must_use.count(name) > 0;
  }

  void Merge(const FunctionRegistry& other) {
    status_returning.insert(other.status_returning.begin(),
                            other.status_returning.end());
    other_returning.insert(other.other_returning.begin(),
                           other.other_returning.end());
    must_use.insert(other.must_use.begin(), other.must_use.end());
  }
};

/// Pass 1: records every function declaration/definition at namespace or
/// class scope into `registry`, split by whether the return type mentions
/// Status/Result.
void CollectFunctions(const LexResult& lex, FunctionRegistry* registry);

/// Seeds the registry with the project's known Status/Result-returning
/// API names (the foundation-model resilience surface among them), so a
/// discarded call is flagged even in a translation unit that never sees
/// the declaration. Names that the scan later also finds with a
/// non-Status return become ambiguous and drop out, as usual.
void SeedProjectStatusApis(FunctionRegistry* registry);

struct LintOptions {
  /// Bare rule names to skip (accepts the "chameleon-" prefix too).
  std::set<std::string> disabled;
  /// Files whose (normalized, relative) path contains one of these
  /// substrings are exempt from the determinism rules: wall-clock reads
  /// are the whole point of a stopwatch, and bench harnesses time things.
  /// Functions defined in these files are also "sanctioned" for the
  /// taint rule — calls to them do not propagate nondeterminism.
  std::vector<std::string> determinism_allowlist = {"util/stopwatch",
                                                    "bench/"};

  bool IsDisabled(const std::string& rule) const {
    return disabled.count(rule) > 0;
  }
};

/// Pass 2 (per-file, lexical): runs the four file-local rules over one
/// file. `path` must be the repo-relative, '/'-separated path —
/// header-guard expectations and the determinism allowlist key off it.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& source, const LexResult& lex,
                              const FunctionRegistry& registry,
                              const LintOptions& options);

/// Pass 2 (per-file, cross-TU): chameleon-lock-discipline. Flags
/// accesses to CHAMELEON_GUARDED_BY members (annotations may live in a
/// different TU than the method bodies) without the named mutex
/// lexically held. Constructors, destructors and const member functions
/// are exempt (see DESIGN.md §12 for the false-negative contract).
void CheckLockDiscipline(const std::string& path, const LexResult& lex,
                         const FileIndex& file_index, const TreeIndex& tree,
                         std::vector<Finding>* out);

/// Pass 2 (tree-level): chameleon-lock-order. Detects cycles in the
/// tree-wide lock-acquisition-order graph (direct nesting plus
/// acquisitions reached through the name-based call graph).
/// `lex_by_file` provides NOLINT suppression context for witness sites.
void CheckLockOrder(const TreeIndex& tree,
                    const std::map<std::string, const LexResult*>& lex_by_file,
                    std::vector<Finding>* out);

/// Pass 2 (tree-level): chameleon-determinism-taint. Propagates
/// nondeterminism sources up the call graph: a function that
/// *transitively* reaches rand()/wall-clock outside the allowlist is
/// flagged with the offending call chain, not just the leaf.
void CheckDeterminismTaint(
    const TreeIndex& tree,
    const std::map<std::string, const LexResult*>& lex_by_file,
    std::vector<Finding>* out);

/// The include-guard symbol the project convention demands for a header
/// at `path` (repo-relative): CHAMELEON_<DIR>_<FILE>_H_ with a leading
/// "src/" dropped. Exposed for tests.
std::string ExpectedGuard(const std::string& path);

}  // namespace chameleon_lint

#endif  // CHAMELEON_TOOLS_ANALYZER_RULES_H_
