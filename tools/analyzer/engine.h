#ifndef CHAMELEON_TOOLS_ANALYZER_ENGINE_H_
#define CHAMELEON_TOOLS_ANALYZER_ENGINE_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/analyzer/rules.h"

namespace chameleon_lint {

/// One input file: repo-relative '/'-separated path plus its contents.
struct SourceFile {
  std::string path;
  std::string source;
};

struct EngineOptions {
  LintOptions lint;
  /// Parallel per-file analysis width. Any value produces byte-identical
  /// output: per-file work lands in per-file slots, the cross-TU index
  /// is merged serially in path order, and the final finding list is
  /// sorted. Values < 1 are treated as 1.
  int jobs = 1;
  /// Baseline keys (see BaselineKey) to drop from the result. Dropped
  /// findings are counted, not reported.
  std::set<std::string> baseline;
  /// Seed the registry with the project's known Status/Result API names.
  bool seed_project_apis = true;
};

struct EngineResult {
  std::vector<Finding> findings;  // sorted, baseline already applied
  size_t baseline_suppressed = 0;
  size_t files_analyzed = 0;
};

/// The three-pass engine: (1) lex + per-file index, in parallel when
/// options.jobs > 1; (2) serial cross-TU merge and the tree rules;
/// (3) per-file rules, again in parallel, then a deterministic merge.
/// Input order does not matter — files are analyzed in sorted-path order.
EngineResult AnalyzeSources(std::vector<SourceFile> files,
                            const EngineOptions& options);

/// Stable identity of a finding for baselines: `file|rule|message`.
/// Line/column are deliberately excluded so a baseline survives
/// unrelated edits above the finding.
std::string BaselineKey(const Finding& finding);

/// Serializes findings to baseline-file text (comments + one key per
/// line, deduplicated, sorted).
std::string FormatBaseline(const std::vector<Finding>& findings);

/// Parses baseline-file text ('#' comments and blank lines ignored).
std::set<std::string> ParseBaseline(const std::string& text);

/// Applies the mechanical fixes among `findings` (those carrying a
/// FixKind other than kNone whose file matches `path`) to `source` and
/// returns the rewritten text. `*applied` receives the number of edits.
/// Fixes are idempotent: a rewritten guard matches the convention and a
/// NOLINTNEXTLINE suppresses the finding, so a second --fix pass finds
/// nothing to do.
std::string ApplyFixes(const std::string& path, const std::string& source,
                       const std::vector<Finding>& findings, size_t* applied);

}  // namespace chameleon_lint

#endif  // CHAMELEON_TOOLS_ANALYZER_ENGINE_H_
