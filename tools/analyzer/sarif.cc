#include "tools/analyzer/sarif.h"

#include <string>

namespace chameleon_lint {
namespace {

/// Minimal JSON string escaping (the only JSON we emit is this file's).
std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"chameleon-lint\",\n"
      "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = Rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    out += "            {\n";
    out += "              \"id\": \"chameleon-" +
           std::string(rules[i].name) + "\",\n";
    out += "              \"shortDescription\": {\"text\": \"" +
           Escape(rules[i].description) + "\"}\n";
    out += "            }";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\n";
    out += "          \"ruleId\": \"chameleon-" + f.rule + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + Escape(f.message) +
           "\"},\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": {\"uri\": \"" +
           Escape(f.file) + "\"},\n";
    out += "                \"region\": {\"startLine\": " +
           std::to_string(f.line) +
           ", \"startColumn\": " + std::to_string(f.col) + "}\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ]\n";
    out += "        }";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace chameleon_lint
