# Self-host gate for chameleon-lint (run via `cmake -P`, wired up as the
# chameleon_lint_selfhost ctest). Asserts:
#   1. zero findings over the live tree with every rule enabled
#      (no --disable, no baseline), and
#   2. byte-identical stdout and SARIF output at --jobs=1 vs --jobs=8 —
#      the determinism contract the --jobs engine promises.
#
# Expects -DLINT=<chameleon-lint binary> -DROOT=<repo root>
#         -DWORK_DIR=<scratch dir for sarif files>.

set(lint_args --root=${ROOT} src tests tools/analyzer tools/obsctl
    tools/chameleond)

execute_process(
  COMMAND ${LINT} --jobs=1 --sarif=${WORK_DIR}/selfhost_j1.sarif ${lint_args}
  OUTPUT_VARIABLE out_j1
  ERROR_VARIABLE err_j1
  RESULT_VARIABLE code_j1)
execute_process(
  COMMAND ${LINT} --jobs=8 --sarif=${WORK_DIR}/selfhost_j8.sarif ${lint_args}
  OUTPUT_VARIABLE out_j8
  ERROR_VARIABLE err_j8
  RESULT_VARIABLE code_j8)

if(NOT code_j1 EQUAL 0)
  message(FATAL_ERROR
          "chameleon-lint --jobs=1 not clean (exit ${code_j1}):\n"
          "${out_j1}${err_j1}")
endif()
if(NOT code_j8 EQUAL 0)
  message(FATAL_ERROR
          "chameleon-lint --jobs=8 not clean (exit ${code_j8}):\n"
          "${out_j8}${err_j8}")
endif()
if(NOT out_j1 STREQUAL out_j8)
  message(FATAL_ERROR
          "stdout differs between --jobs=1 and --jobs=8:\n"
          "--- jobs=1 ---\n${out_j1}\n--- jobs=8 ---\n${out_j8}")
endif()

file(READ ${WORK_DIR}/selfhost_j1.sarif sarif_j1)
file(READ ${WORK_DIR}/selfhost_j8.sarif sarif_j8)
if(NOT sarif_j1 STREQUAL sarif_j8)
  message(FATAL_ERROR "SARIF differs between --jobs=1 and --jobs=8")
endif()

message(STATUS "chameleon-lint selfhost: clean at jobs=1 and jobs=8, "
               "outputs byte-identical")
