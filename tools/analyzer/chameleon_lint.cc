// chameleon-lint: project-invariant static analyzer for the Chameleon
// tree. Enforces, as named and suppressible rules, the invariants the
// compiler cannot see: Status discipline, determinism, concurrency
// hygiene, and header hygiene. See DESIGN.md "Static analysis &
// invariants".
//
// Usage:
//   chameleon-lint [--root=DIR] [--disable=rule,...] [--list-rules] [paths]
//
// With no paths, lints src/ and tests/ under --root (default: cwd).
// Output is machine-friendly: `file:line:col: [chameleon-rule] message`.
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyzer/rules.h"
#include "tools/analyzer/token.h"

namespace {

namespace fs = std::filesystem;
using chameleon_lint::Finding;
using chameleon_lint::FunctionRegistry;
using chameleon_lint::LexResult;
using chameleon_lint::LintOptions;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// Path relative to root with '/' separators — the form rules key off.
std::string Relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec || rel.empty() ? p : rel).generic_string();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root=DIR] [--disable=rule,...] [--list-rules] "
               "[paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  LintOptions options;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : chameleon_lint::Rules()) {
        std::printf("chameleon-%s: %s\n", rule.name, rule.description);
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = fs::path(arg.substr(7));
      continue;
    }
    if (arg.rfind("--disable=", 0) == 0) {
      std::stringstream list(arg.substr(10));
      std::string name;
      while (std::getline(list, name, ',')) {
        if (name.rfind("chameleon-", 0) == 0) name = name.substr(10);
        if (name.empty()) continue;
        const auto& rules = chameleon_lint::Rules();
        const bool known =
            std::any_of(rules.begin(), rules.end(),
                        [&](const auto& r) { return name == r.name; });
        if (!known) {
          std::fprintf(stderr, "unknown rule '%s' (try --list-rules)\n",
                       name.c_str());
          return 2;
        }
        options.disabled.insert(name);
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) return Usage(argv[0]);
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    inputs = {"src", "tests"};
  }

  // Resolve inputs (relative to --root) into the file set.
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    fs::path p(input);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "cannot read '%s'\n", input.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Lex everything once; pass 1 builds the cross-file function registry.
  struct FileData {
    std::string rel;
    std::string source;
    LexResult lex;
  };
  std::vector<FileData> data;
  data.reserve(files.size());
  FunctionRegistry registry;
  chameleon_lint::SeedProjectStatusApis(&registry);
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", file.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    FileData d;
    d.rel = Relativize(file, root);
    d.source = buffer.str();
    d.lex = chameleon_lint::Lex(d.source);
    chameleon_lint::CollectFunctions(d.lex, &registry);
    data.push_back(std::move(d));
  }

  // Pass 2: rules.
  std::vector<Finding> findings;
  for (const FileData& d : data) {
    std::vector<Finding> file_findings =
        chameleon_lint::LintFile(d.rel, d.source, d.lex, registry, options);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  std::sort(findings.begin(), findings.end());
  for (const Finding& finding : findings) {
    std::printf("%s\n", chameleon_lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "chameleon-lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), data.size());
    return 1;
  }
  return 0;
}
