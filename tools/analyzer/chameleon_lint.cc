// chameleon-lint: project-invariant static analyzer for the Chameleon
// tree. Enforces, as named and suppressible rules, the invariants the
// compiler cannot see: Status discipline, determinism (leaf uses and
// call-graph taint), concurrency hygiene, lock discipline, lock-order
// acyclicity, and header hygiene. See DESIGN.md "Static analysis &
// invariants" and "Cross-TU analysis".
//
// Usage:
//   chameleon-lint [--root=DIR] [--disable=rule,...] [--list-rules]
//                  [--jobs=N] [--sarif=FILE] [--baseline=FILE]
//                  [--write-baseline=FILE] [--fix] [paths]
//
// With no paths, lints src/ and tests/ under --root (default: cwd).
// Output is machine-friendly: `file:line:col: [chameleon-rule] message`,
// byte-identical at every --jobs value. Exit codes: 0 clean, 1 findings,
// 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyzer/engine.h"
#include "tools/analyzer/rules.h"
#include "tools/analyzer/sarif.h"

namespace {

namespace fs = std::filesystem;
using chameleon_lint::EngineOptions;
using chameleon_lint::EngineResult;
using chameleon_lint::Finding;
using chameleon_lint::SourceFile;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// Path relative to root with '/' separators — the form rules key off.
std::string Relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec || rel.empty() ? p : rel).generic_string();
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root=DIR] [--disable=rule,...] [--list-rules] "
               "[--jobs=N] [--sarif=FILE] [--baseline=FILE] "
               "[--write-baseline=FILE] [--fix] [paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  EngineOptions options;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool fix = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : chameleon_lint::Rules()) {
        std::printf("chameleon-%s: %s\n", rule.name, rule.description);
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = fs::path(arg.substr(7));
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::atoi(arg.c_str() + 7);
      if (options.jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      continue;
    }
    if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
      continue;
    }
    if (arg == "--fix") {
      fix = true;
      continue;
    }
    if (arg.rfind("--disable=", 0) == 0) {
      std::stringstream list(arg.substr(10));
      std::string name;
      while (std::getline(list, name, ',')) {
        if (name.rfind("chameleon-", 0) == 0) name = name.substr(10);
        if (name.empty()) continue;
        const auto& rules = chameleon_lint::Rules();
        const bool known =
            std::any_of(rules.begin(), rules.end(),
                        [&](const auto& r) { return name == r.name; });
        if (!known) {
          std::fprintf(stderr, "unknown rule '%s' (try --list-rules)\n",
                       name.c_str());
          return 2;
        }
        options.lint.disabled.insert(name);
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) return Usage(argv[0]);
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    inputs = {"src", "tests"};
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadFile(fs::path(baseline_path), &text)) {
      std::fprintf(stderr, "cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    options.baseline = chameleon_lint::ParseBaseline(text);
  }

  // Resolve inputs (relative to --root) into the file set.
  std::vector<fs::path> paths;
  for (const std::string& input : inputs) {
    fs::path p(input);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          paths.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      paths.push_back(p);
    } else {
      std::fprintf(stderr, "cannot read '%s'\n", input.c_str());
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  std::vector<fs::path> abs_paths;  // aligned with `files` after sorting
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    SourceFile file;
    file.path = Relativize(path, root);
    if (!ReadFile(path, &file.source)) {
      std::fprintf(stderr, "cannot read '%s'\n", path.string().c_str());
      return 2;
    }
    files.push_back(std::move(file));
    abs_paths.push_back(path);
  }

  EngineResult result = chameleon_lint::AnalyzeSources(files, options);

  if (fix) {
    // Apply the mechanical fixes, then re-analyze so the report (and the
    // exit code) reflect the tree as fixed. Fixes are idempotent, so one
    // re-analysis suffices.
    size_t total_applied = 0;
    for (size_t i = 0; i < files.size(); ++i) {
      size_t applied = 0;
      const std::string fixed = chameleon_lint::ApplyFixes(
          files[i].path, files[i].source, result.findings, &applied);
      if (applied == 0) continue;
      if (!WriteFile(abs_paths[i], fixed)) {
        std::fprintf(stderr, "cannot write '%s'\n",
                     abs_paths[i].string().c_str());
        return 2;
      }
      files[i].source = fixed;
      total_applied += applied;
    }
    std::fprintf(stderr, "chameleon-lint: applied %zu fix(es)\n",
                 total_applied);
    if (total_applied > 0) {
      result = chameleon_lint::AnalyzeSources(files, options);
    }
  }

  if (!write_baseline_path.empty()) {
    if (!WriteFile(fs::path(write_baseline_path),
                   chameleon_lint::FormatBaseline(result.findings))) {
      std::fprintf(stderr, "cannot write baseline '%s'\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "chameleon-lint: wrote %zu baseline entr(ies) to %s\n",
                 result.findings.size(), write_baseline_path.c_str());
    return 0;
  }

  if (!sarif_path.empty()) {
    if (!WriteFile(fs::path(sarif_path),
                   chameleon_lint::ToSarif(result.findings))) {
      std::fprintf(stderr, "cannot write sarif '%s'\n", sarif_path.c_str());
      return 2;
    }
  }

  for (const Finding& finding : result.findings) {
    std::printf("%s\n", chameleon_lint::FormatFinding(finding).c_str());
  }
  if (!result.findings.empty()) {
    std::fprintf(stderr, "chameleon-lint: %zu finding(s) in %zu file(s)",
                 result.findings.size(), result.files_analyzed);
    if (result.baseline_suppressed > 0) {
      std::fprintf(stderr, " (%zu baselined)", result.baseline_suppressed);
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  return 0;
}
