#include "tools/analyzer/token.h"

#include <algorithm>
#include <cctype>

namespace chameleon_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Records NOLINT / NOLINTNEXTLINE annotations found in a comment body.
/// `line` is the line the comment starts on; annotations deeper inside a
/// multi-line block comment target the line they are actually written
/// on, so the newlines before each occurrence are counted in.
void ParseNolint(const std::string& comment, int line,
                 std::map<int, std::set<std::string>>* nolint) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;
    const int written_on =
        line + static_cast<int>(std::count(comment.begin(),
                                           comment.begin() + pos, '\n'));
    int target = written_on;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = written_on + 1;
    }
    std::set<std::string>& rules = (*nolint)[target];
    if (after < comment.size() && comment[after] == '(') {
      const size_t close = comment.find(')', after);
      const std::string list =
          comment.substr(after + 1, close == std::string::npos
                                        ? std::string::npos
                                        : close - after - 1);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string name = list.substr(start, comma - start);
        // Trim spaces.
        while (!name.empty() && name.front() == ' ') name.erase(name.begin());
        while (!name.empty() && name.back() == ' ') name.pop_back();
        if (!name.empty()) rules.insert(name);
        start = comma + 1;
      }
    } else {
      rules.insert("*");  // bare NOLINT: suppress everything
    }
    pos = after;
  }
}

}  // namespace

LexResult Lex(const std::string& source) {
  LexResult out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  int col = 1;
  bool at_line_start = true;  // only whitespace seen since last newline

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
        at_line_start = true;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = source[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
        c == '\f') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int start_line = line;
      size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      ParseNolint(source.substr(i, end - i), start_line, &out.nolint);
      advance(end - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      size_t end = source.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      ParseNolint(source.substr(i, end - i), start_line, &out.nolint);
      advance(end - i);
      continue;
    }
    // Preprocessor directive: '#' with only whitespace before it on the
    // line. Consumes the logical line (folding backslash continuations);
    // trailing // comments still get NOLINT-parsed above on later lines,
    // but comments inside the directive are left as-is (rules only look
    // at the leading directive keyword and symbol).
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      size_t j = i + 1;
      while (j < n) {
        if (source[j] == '\\' && j + 1 < n && source[j + 1] == '\n') {
          text += ' ';
          j += 2;
          continue;
        }
        if (source[j] == '\n') break;
        text += source[j];
        ++j;
      }
      // Trim.
      size_t b = text.find_first_not_of(" \t");
      size_t e = text.find_last_not_of(" \t");
      text = (b == std::string::npos) ? "" : text.substr(b, e - b + 1);
      out.directives.push_back({text, start_line});
      advance(j - i);
      continue;
    }
    at_line_start = false;
    // Identifier (and raw-string prefix detection).
    if (IsIdentStart(c)) {
      const int tl = line, tc = col;
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      std::string ident = source.substr(i, j - i);
      // Raw string literal: R"delim( ... )delim" — all five encoding
      // prefixes ([u8|u|U|L]R). Missing one would spill the literal's
      // body into the token stream as ordinary code.
      if (j < n && source[j] == '"' &&
          (ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
           ident == "LR")) {
        size_t k = j + 1;
        std::string delim;
        while (k < n && source[k] != '(') delim += source[k++];
        const std::string closer = ")" + delim + "\"";
        size_t end = source.find(closer, k);
        end = (end == std::string::npos) ? n : end + closer.size();
        out.tokens.push_back(
            {TokenKind::kString, source.substr(i, end - i), tl, tc});
        advance(end - i);
        continue;
      }
      out.tokens.push_back({TokenKind::kIdentifier, std::move(ident), tl, tc});
      advance(j - i);
      continue;
    }
    // Number (pp-number: also eats 1'000, 0x1F, 1e-3).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      const int tl = line, tc = col;
      size_t j = i + 1;
      while (j < n) {
        const char d = source[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < n && IsIdentChar(source[j + 1])) {
          j += 2;  // digit separator
        } else if ((d == '+' || d == '-') &&
                   (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                    source[j - 1] == 'p' || source[j - 1] == 'P')) {
          ++j;  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back({TokenKind::kNumber, source.substr(i, j - i), tl, tc});
      advance(j - i);
      continue;
    }
    // String literal.
    if (c == '"') {
      const int tl = line, tc = col;
      size_t j = i + 1;
      while (j < n && source[j] != '"') {
        if (source[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      j = (j < n) ? j + 1 : n;
      out.tokens.push_back({TokenKind::kString, source.substr(i, j - i), tl, tc});
      advance(j - i);
      continue;
    }
    // Char literal.
    if (c == '\'') {
      const int tl = line, tc = col;
      size_t j = i + 1;
      while (j < n && source[j] != '\'') {
        if (source[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      j = (j < n) ? j + 1 : n;
      out.tokens.push_back(
          {TokenKind::kCharLiteral, source.substr(i, j - i), tl, tc});
      advance(j - i);
      continue;
    }
    // Punctuation; keep :: and -> glued, everything else single-char.
    {
      const int tl = line, tc = col;
      if (c == ':' && i + 1 < n && source[i + 1] == ':') {
        out.tokens.push_back({TokenKind::kPunct, "::", tl, tc});
        advance(2);
      } else if (c == '-' && i + 1 < n && source[i + 1] == '>') {
        out.tokens.push_back({TokenKind::kPunct, "->", tl, tc});
        advance(2);
      } else {
        out.tokens.push_back({TokenKind::kPunct, std::string(1, c), tl, tc});
        advance(1);
      }
    }
  }
  return out;
}

bool IsSuppressed(const LexResult& lex, int line, const std::string& rule) {
  const auto it = lex.nolint.find(line);
  if (it == lex.nolint.end()) return false;
  return it->second.count("*") > 0 || it->second.count(rule) > 0;
}

}  // namespace chameleon_lint
