#ifndef CHAMELEON_TOOLS_ANALYZER_SARIF_H_
#define CHAMELEON_TOOLS_ANALYZER_SARIF_H_

#include <string>
#include <vector>

#include "tools/analyzer/rules.h"

namespace chameleon_lint {

/// Serializes findings as a SARIF 2.1.0 log (one run, the full rules
/// table in tool.driver, one result per finding). The output is fully
/// deterministic — fixed key order, fixed indentation — so CI can diff
/// artifacts and the selfhost test can compare bytes across --jobs
/// values. Findings must already be sorted.
std::string ToSarif(const std::vector<Finding>& findings);

}  // namespace chameleon_lint

#endif  // CHAMELEON_TOOLS_ANALYZER_SARIF_H_
