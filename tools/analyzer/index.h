#ifndef CHAMELEON_TOOLS_ANALYZER_INDEX_H_
#define CHAMELEON_TOOLS_ANALYZER_INDEX_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyzer/token.h"

namespace chameleon_lint {

// ---------------------------------------------------------------------------
// Shared lexical-scope machinery (used by the per-file rules and the
// cross-TU index so the two passes can never disagree about scoping).
// ---------------------------------------------------------------------------

/// What kind of construct a brace pair belongs to. Heuristic, not a
/// parse: the authoritative check is the fixture suite plus the
/// zero-findings run over the live tree.
enum class ScopeKind {
  kNamespace,    // namespace body (and file top level)
  kType,         // class/struct/union/enum body
  kFunction,     // function/lambda body or nested block
  kInitializer,  // braced initializer list
};

/// Per-token scope information, aligned with LexResult::tokens.
struct ScopeInfo {
  ScopeKind innermost = ScopeKind::kNamespace;
  bool in_function = false;  // true if any enclosing scope is a function
  int type_id = -1;          // innermost enclosing type, -1 = none
};

/// ComputeScopeMap output: per-token scope plus the interned names of
/// the types those scopes belong to.
struct ScopeMap {
  std::vector<ScopeInfo> info;          // aligned with tokens
  std::vector<std::string> type_names;  // indexed by ScopeInfo::type_id

  /// Name of the innermost type enclosing `token` ("" when none).
  const std::string& TypeName(size_t token) const;
};

ScopeMap ComputeScopeMap(const std::vector<Token>& tokens);

/// Index of the matching ")" for the "(" at `open`, or npos.
size_t MatchParen(const std::vector<Token>& tokens, size_t open);

/// match[i] = index of the brace matching the "{"/"}" at i (npos for
/// non-brace tokens and unbalanced braces).
std::vector<size_t> ComputeBraceMatch(const std::vector<Token>& tokens);

/// The annotation macro the lock-discipline rule keys off. Declared in
/// src/util/thread_annotations.h as a compiler no-op; to the analyzer a
/// member declared `T member_ CHAMELEON_GUARDED_BY(mu_);` may only be
/// touched while `mu_` is (lexically) held.
inline constexpr char kGuardedByMacro[] = "CHAMELEON_GUARDED_BY";

/// One lexical lock acquisition inside a function body:
/// `std::lock_guard<std::mutex> l(mu_);` and friends. The mutex is held
/// from `token` to the end of the enclosing brace scope (`scope_end`,
/// exclusive) — lock.unlock()/release() are invisible to the analyzer
/// and documented as a false-positive class.
struct LockAcquisition {
  std::string mutex;  // canonical id: "Class::mu_" in members, "mu" free
  size_t token = 0;   // index of the lock-class identifier token
  size_t scope_end = 0;  // one past the last token the lock covers
  int line = 0;
  int col = 0;
};

/// One `name(` call site inside a function body, with the mutexes
/// lexically held at that point (for interprocedural lock-order edges).
struct CallSite {
  std::string callee;  // simple name; resolution is name-based
  int line = 0;
  int col = 0;
  /// Called through `obj.` / `ptr->` on an explicit non-this receiver.
  /// Such calls never resolve to the caller's own class: the receiver is
  /// visibly a different object (`digest_.Quantile(q)` inside
  /// Histogram::Quantile must not resolve back to Histogram::Quantile).
  bool via_object = false;
  std::vector<std::string> held;  // canonical mutex ids, acquisition order
};

/// One direct nondeterminism source inside a function body (the same
/// patterns the leaf chameleon-determinism rule flags).
struct NondetUse {
  std::string what;  // e.g. "rand()", "std::random_device"
  int line = 0;
  int col = 0;
};

/// One function definition (a body was seen). Declarations without
/// bodies contribute nothing to the cross-TU graph.
struct FunctionInfo {
  std::string name;        // simple name
  std::string qualified;   // "Class::name" or "name"
  std::string class_name;  // enclosing/qualifying class; "" for free
  std::string file;        // repo-relative path
  int line = 0;
  int col = 0;
  bool is_const = false;     // const member function
  bool is_ctor_dtor = false; // constructor or destructor
  bool is_dtor = false;      // destructor (indexed under "~Name")
  bool sanctioned = false;   // defined in a determinism-allowlisted file
  size_t body_begin = 0;     // token index of the body '{'
  size_t body_end = 0;       // token index of the matching '}'
  std::vector<CallSite> calls;
  std::vector<NondetUse> nondet;
  std::vector<LockAcquisition> locks;
};

/// A member annotated CHAMELEON_GUARDED_BY in a class body.
struct GuardedMember {
  std::string class_name;
  std::string member;
  std::string mutex;  // simple name as written in the annotation
  std::string file;
  int line = 0;
};

/// Everything pass 1 extracts from one file beyond the raw lex.
struct FileIndex {
  std::vector<FunctionInfo> functions;  // in token order
  std::vector<GuardedMember> guarded;
};

/// Substring allowlist applied to nondeterminism *sources*: functions
/// defined in matching files are sanctioned — they are never taint
/// origins and calls to them do not propagate taint.
struct IndexOptions {
  std::vector<std::string> determinism_allowlist;
  /// Lines suppressed for these rules drop the nondet source (a vetted
  /// NOLINT on the leaf also clears transitive taint).
  std::vector<std::string> nondet_suppression_rules = {
      "chameleon-determinism", "chameleon-determinism-taint"};
};

FileIndex BuildFileIndex(const std::string& path, const LexResult& lex,
                         const IndexOptions& options);

/// One lock-order edge: `from` was held when `to` was acquired (directly
/// or via a call into a function that may acquire `to`).
struct LockOrderEdge {
  std::string site;  // "file:line, in 'Qualified'" of the witness
  std::string file;  // witness file (for finding placement)
  int line = 0;
  int col = 0;
};

/// The merged cross-TU picture. Built serially from per-file indices in
/// file order, so its contents — and every finding derived from it —
/// are deterministic regardless of --jobs.
struct TreeIndex {
  /// class -> member -> mutex simple name.
  std::map<std::string, std::map<std::string, std::string>> guarded;
  /// class -> annotation site (for messages).
  std::vector<GuardedMember> guarded_decls;
  /// All function definitions, file order then token order.
  std::vector<FunctionInfo> functions;
  /// simple name -> indices into `functions`. Destructors are keyed
  /// "~Name" so a lexical call `Name(...)` resolves to constructors
  /// only (a dtor's lock acquisitions must not be imputed to
  /// construction sites).
  std::map<std::string, std::vector<size_t>> by_name;
  /// function index -> canonical mutexes it may acquire, transitively.
  std::vector<std::set<std::string>> may_acquire;
  /// (held, acquired) -> first witness site, in deterministic order.
  std::map<std::pair<std::string, std::string>, LockOrderEdge> edges;
};

/// Merges per-file indices (caller supplies them in file order), then
/// computes the name-based call graph, the may-acquire fixpoint, and the
/// lock-order edge set.
TreeIndex BuildTreeIndex(const std::vector<const FileIndex*>& files);

/// Names excluded from cross-TU call resolution because they collide
/// with std container/stream vocabulary the index cannot see (a
/// name-based graph would wire e.g. `queue_.size()` to every project
/// class that happens to define a `size()`). A documented
/// false-negative class (DESIGN.md §12).
const std::set<std::string>& StdVocabularyNames();

}  // namespace chameleon_lint

#endif  // CHAMELEON_TOOLS_ANALYZER_INDEX_H_
