#include "tools/analyzer/rules.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <string>

namespace chameleon_lint {
namespace {

// Scope classification and brace/paren matching live in index.h — one
// implementation shared with the cross-TU pass so the two can never
// disagree about scoping.

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string Lowercase(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsTestPath(const std::string& path) {
  return Contains(path, "tests/") || Contains(path, "_test.cc");
}

bool IsHeaderPath(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

/// Emits `finding` unless suppressed via NOLINT on its line.
void Emit(const LexResult& lex, std::vector<Finding>* out, Finding finding) {
  if (IsSuppressed(lex, finding.line, "chameleon-" + finding.rule) ||
      IsSuppressed(lex, finding.line, finding.rule)) {
    return;
  }
  out->push_back(std::move(finding));
}

// ---------------------------------------------------------------------------
// Pass 1: function registry
// ---------------------------------------------------------------------------

/// True if the token can be part of a return type spelled before a
/// function name: identifiers, ::, template angle brackets, pointers,
/// references.
bool IsReturnTypeToken(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) return true;
  return IsPunct(t, "::") || IsPunct(t, "<") || IsPunct(t, ">") ||
         IsPunct(t, "*") || IsPunct(t, "&");
}

}  // namespace

void CollectFunctions(const LexResult& lex, FunctionRegistry* registry) {
  const std::vector<Token>& toks = lex.tokens;
  const ScopeMap scopes = ComputeScopeMap(toks);
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || !IsPunct(toks[i + 1], "("))
      continue;
    if (scopes.info[i].in_function ||
        scopes.info[i].innermost == ScopeKind::kInitializer)
      continue;
    const std::string& name = toks[i].text;
    if (name == "operator") continue;
    // Walk back over the qualified-name prefix (Type::Name) to its head.
    size_t head = i;
    while (head >= 2 && IsPunct(toks[head - 1], "::") &&
           toks[head - 2].kind == TokenKind::kIdentifier) {
      head -= 2;
    }
    if (head == 0) continue;
    const Token& prev = toks[head - 1];
    // A declaration has a return type (or `auto`) directly before the
    // name; constructors, macro invocations, and expressions do not.
    if (!IsReturnTypeToken(prev)) continue;
    if (prev.kind == TokenKind::kIdentifier &&
        (prev.text == "explicit" || prev.text == "friend" ||
         prev.text == "new" || prev.text == "delete" || prev.text == "goto" ||
         prev.text == "return" || prev.text == "case" || prev.text == "co_return" ||
         prev.text == "throw" || prev.text == "sizeof")) {
      continue;
    }
    // Scan the contiguous return-type run backwards for Status/Result.
    bool is_status = false;
    size_t j = head;
    while (j > 0 && IsReturnTypeToken(toks[j - 1])) {
      --j;
      if (toks[j].kind == TokenKind::kIdentifier &&
          (toks[j].text == "Status" || toks[j].text == "Result")) {
        is_status = true;
      }
    }
    if (is_status) {
      registry->status_returning.insert(name);
    } else {
      registry->other_returning.insert(name);
    }
  }
}

void SeedProjectStatusApis(FunctionRegistry* registry) {
  // The project's cross-module Status/Result surface, including the
  // fault-tolerant foundation-model client (FoundationModel::Generate and
  // its Flaky/Resilient decorators). Keep this list of names unambiguous
  // in the live tree: a colliding non-Status declaration silences the
  // rule for that name.
  static const char* const kKnownStatusApis[] = {
      "Generate",           // FoundationModel + Flaky/Resilient decorators
      "GenerateAccepted",   // core::Chameleon
      "RepairMinLevelMups", // core::Chameleon
      "Enqueue",            // fm::BatchCoalescer
      "Flush",              // fm::BatchCoalescer — a dropped flush status
                            // silently loses the whole batch's failures
      "FromDataset",        // coverage::PatternCounter + IncrementalMupIndex
      "AddTuple",           // coverage::PatternCounter
      "Insert",             // coverage::IncrementalMupIndex — a dropped
                            // status means the frontier and the corpus
                            // silently disagree from then on
      "InsertBatch",        // coverage::IncrementalMupIndex
      "LoadCorpus",         // fm corpus persistence
      "SaveCorpus",
      "Write",              // obs Registry/Tracer/Journal file export
      "WriteOpenMetrics",   // obs exporters (export.h)
      "WriteTraceEvents",
      "WriteJson",          // bench::BenchJsonReport
      "StreamTo",           // obs Journal/Tracer streaming sinks
      "CloseStream",
      // The chameleond serving layer (tools/chameleond). "Submit" also
      // names util::ThreadPool::Submit (future<void>, discardable), but
      // the scan sees that declaration and the name drops out as
      // ambiguous — seeding it still covers TUs that only see daemon.h.
      "Serve",              // daemon::Daemon — the whole serve loop
      "Submit",             // daemon::Daemon admission control
      "Cancel",             // daemon::Daemon — NotFound is meaningful
      "Drain",              // daemon::Daemon — a dropped drain status
                            // hides a forced (cancelled-straggler) exit
      "Resume",             // daemon::Daemon journal recovery
      "WriteFrame",         // daemon frame codec
  };
  for (const char* name : kKnownStatusApis) {
    registry->status_returning.insert(name);
  }
  // The observability layer's handle-returning surface: the return value
  // is the whole point of the call, so a discarded call is a bug even
  // though the return type is not Status/Result.
  static const char* const kKnownMustUseApis[] = {
      "GenerateBatch",  // fm — dropping the results loses every slot's
                        // answer (and any per-request failures) at once
      "StartSpan",  // obs::Tracer — discarding the Span ends it immediately
      "Counter",    // obs::Registry — instrument lookups
      "Gauge",
      "Histogram",
      "ExportOpenMetrics",  // obs exporters: the string IS the result
      "ExportTraceEvents",
      "Mups",  // coverage::IncrementalMupIndex — the maintained frontier
               // is the only product of the index; a bare call is dead
  };
  for (const char* name : kKnownMustUseApis) {
    registry->must_use.insert(name);
  }
}

// ---------------------------------------------------------------------------
// Pass 2: rules
// ---------------------------------------------------------------------------

namespace {

void CheckStatusDiscipline(const std::string& path, const LexResult& lex,
                           const ScopeMap& scopes,
                           const FunctionRegistry& registry,
                           std::vector<Finding>* out) {
  const std::vector<Token>& toks = lex.tokens;
  static const std::set<std::string> kStatementKeywords = {
      "return", "co_return", "co_yield", "co_await", "throw",  "delete",
      "goto",   "break",     "continue", "case",     "default", "using",
      "typedef", "template", "if",       "for",      "while",  "do",
      "switch", "else",      "new",      "public",   "private", "protected"};

  std::set<size_t> stmt_starts;
  // Statement boundaries: after ; { } inside functions, after else/do,
  // and after the closing paren of a control-flow header.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsPunct(toks[i], ";") || IsPunct(toks[i], "{") ||
        IsPunct(toks[i], "}") || IsIdent(toks[i], "else") ||
        IsIdent(toks[i], "do")) {
      stmt_starts.insert(i + 1);
    }
    if (IsPunct(toks[i], "(") && i > 0 &&
        (IsIdent(toks[i - 1], "if") || IsIdent(toks[i - 1], "while") ||
         IsIdent(toks[i - 1], "for") || IsIdent(toks[i - 1], "switch"))) {
      const size_t close = MatchParen(toks, i);
      if (close != std::string::npos) stmt_starts.insert(close + 1);
    }
  }

  for (size_t s : stmt_starts) {
    if (s >= toks.size()) continue;
    if (!scopes.info[s].in_function) continue;
    if (toks[s].kind != TokenKind::kIdentifier) continue;
    if (kStatementKeywords.count(toks[s].text) > 0) continue;
    // Parse a call chain: name(...)  obj.name(...)  ns::obj->name(...)
    // chained through member access on call results. The statement is a
    // *discard* when the final token after the last call is ';'.
    size_t k = s;
    std::string callee = toks[k].text;
    while (true) {
      if (k + 1 >= toks.size()) { callee.clear(); break; }
      const Token& next = toks[k + 1];
      if (IsPunct(next, "::") || IsPunct(next, ".") || IsPunct(next, "->")) {
        if (k + 2 >= toks.size() ||
            toks[k + 2].kind != TokenKind::kIdentifier) {
          callee.clear();
          break;
        }
        callee = toks[k + 2].text;
        k += 2;
        continue;
      }
      if (IsPunct(next, "(")) {
        const size_t close = MatchParen(toks, k + 1);
        if (close == std::string::npos || close + 1 >= toks.size()) {
          callee.clear();
          break;
        }
        const Token& after = toks[close + 1];
        if (IsPunct(after, ";")) break;  // bare call statement: `callee` set
        if (IsPunct(after, ".") || IsPunct(after, "->")) {
          k = close;  // chain continues on the call result
          continue;
        }
        callee.clear();  // call is a subexpression of something larger
        break;
      }
      callee.clear();  // declaration, assignment, arithmetic, ...
      break;
    }
    if (callee.empty()) continue;
    if (registry.IsMustUse(callee)) {
      Emit(lex, out,
           {path, toks[s].line, toks[s].col, "status-discipline",
            "result of '" + callee +
                "' is discarded; the returned handle is the product of the "
                "call (a discarded Span ends immediately, a discarded "
                "instrument pointer records nothing)",
            FixKind::kInsertNolint, ""});
      continue;
    }
    if (!registry.IsUnambiguousStatus(callee)) continue;
    Emit(lex, out,
         {path, toks[s].line, toks[s].col, "status-discipline",
          "result of Status/Result-returning '" + callee +
              "' is discarded; check it, propagate it, or cast to (void) "
              "with a comment explaining why failure is ignorable"});
  }
}

void CheckDeterminism(const std::string& path, const LexResult& lex,
                      const LintOptions& options, std::vector<Finding>* out) {
  for (const std::string& allowed : options.determinism_allowlist) {
    if (Contains(path, allowed.c_str())) return;
  }
  const std::vector<Token>& toks = lex.tokens;
  const char* why =
      "; hidden nondeterminism breaks the pipeline's bit-identical-at-any-"
      "thread-count guarantee (use util::Rng with an explicit seed)";
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool member_access =
        i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    const bool called = i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    if (t.text == "rand" && called && !member_access) {
      Emit(lex, out,
           {path, t.line, t.col, "determinism",
            std::string("call to rand()") + why});
    } else if (t.text == "srand" && called && !member_access) {
      Emit(lex, out,
           {path, t.line, t.col, "determinism",
            std::string("call to srand()") + why});
    } else if (t.text == "random_device" && !member_access) {
      Emit(lex, out,
           {path, t.line, t.col, "determinism",
            std::string("use of std::random_device") + why});
    } else if (t.text == "time" && called && !member_access &&
               i + 3 < toks.size() &&
               (IsIdent(toks[i + 2], "nullptr") ||
                IsIdent(toks[i + 2], "NULL") || toks[i + 2].text == "0") &&
               IsPunct(toks[i + 3], ")")) {
      Emit(lex, out,
           {path, t.line, t.col, "determinism",
            std::string("time(nullptr)-style wall-clock seed") + why});
    } else if (t.text == "now" && called && i > 0 &&
               IsPunct(toks[i - 1], "::") && i + 2 < toks.size() &&
               IsPunct(toks[i + 2], ")")) {
      Emit(lex, out,
           {path, t.line, t.col, "determinism",
            "argless clock ::now() outside util/stopwatch and bench code" +
                std::string(why)});
    }
  }
}

void CheckConcurrencyHygiene(const std::string& path, const std::string& source,
                             const LexResult& lex, const ScopeMap& scopes,
                             std::vector<Finding>* out) {
  const std::vector<Token>& toks = lex.tokens;
  const std::string lower = Lowercase(source);
  const bool mentions_thread_safety = Contains(lower, "thread-safe") ||
                                      Contains(lower, "thread safe") ||
                                      Contains(lower, "thread-safety") ||
                                      Contains(lower, "thread safety");
  const bool is_test = IsTestPath(path);

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    // Function-local mutable static state: shared across calls and, under
    // the thread pool, across threads.
    if (t.text == "static" && !is_test && scopes.info[i].in_function &&
        scopes.info[i].innermost == ScopeKind::kFunction) {
      bool is_const = i > 0 && (IsIdent(toks[i - 1], "const") ||
                                IsIdent(toks[i - 1], "constexpr"));
      for (size_t j = i + 1; !is_const && j < toks.size() && j < i + 6; ++j) {
        if (IsPunct(toks[j], ";") || IsPunct(toks[j], "(") ||
            IsPunct(toks[j], "=")) {
          break;
        }
        if (IsIdent(toks[j], "const") || IsIdent(toks[j], "constexpr")) {
          is_const = true;
        }
      }
      if (!is_const) {
        Emit(lex, out,
             {path, t.line, t.col, "concurrency-hygiene",
              "function-local static mutable state; worker threads share it "
              "non-deterministically (hoist it, make it const, or inject it "
              "explicitly)"});
      }
    }
    // `mutable` members in files that document thread-safety must be
    // synchronized types.
    if (t.text == "mutable" && mentions_thread_safety &&
        !scopes.info[i].in_function &&
        scopes.info[i].innermost == ScopeKind::kType) {
      bool synchronized = false;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (IsPunct(toks[j], ";")) break;
        if (toks[j].kind == TokenKind::kIdentifier &&
            (toks[j].text == "atomic" || toks[j].text == "mutex" ||
             toks[j].text == "shared_mutex" || toks[j].text == "once_flag" ||
             toks[j].text == "condition_variable")) {
          synchronized = true;
          break;
        }
      }
      if (!synchronized) {
        Emit(lex, out,
             {path, t.line, t.col, "concurrency-hygiene",
              "mutable member in a file documenting thread-safety without "
              "std::atomic/std::mutex protection"});
      }
    }
  }
}

/// Direct-include requirements for common std vocabulary types: a header
/// that names std::X must include <header-for-X> itself rather than rely
/// on a transitive include.
const std::map<std::string, std::string>& StdSymbolHeaders() {
  static const std::map<std::string, std::string> kMap = {
      {"string", "string"},
      {"vector", "vector"},
      {"map", "map"},
      {"set", "set"},
      {"unordered_map", "unordered_map"},
      {"unordered_set", "unordered_set"},
      {"deque", "deque"},
      {"array", "array"},
      {"atomic", "atomic"},
      {"mutex", "mutex"},
      {"shared_mutex", "shared_mutex"},
      {"condition_variable", "condition_variable"},
      {"thread", "thread"},
      {"unique_ptr", "memory"},
      {"shared_ptr", "memory"},
      {"weak_ptr", "memory"},
      {"function", "functional"},
      {"optional", "optional"},
      {"variant", "variant"},
      {"pair", "utility"},
      {"move", "utility"},
      {"string_view", "string_view"},
  };
  return kMap;
}

void CheckHeaderHygiene(const std::string& path, const LexResult& lex,
                        const ScopeMap& scopes, std::vector<Finding>* out) {
  if (!IsHeaderPath(path)) return;
  const std::string expected = ExpectedGuard(path);

  // Include guard: the first two directives must be `#ifndef GUARD` /
  // `#define GUARD` with the path-derived symbol.
  auto directive_word = [](const std::string& text, size_t* rest) {
    size_t sp = text.find_first_of(" \t");
    if (sp == std::string::npos) sp = text.size();
    *rest = text.find_first_not_of(" \t", sp);
    return text.substr(0, sp);
  };
  bool guard_ok = false;
  bool has_pair = false;  // an ifndef/define pair exists (fixable in place)
  if (lex.directives.size() >= 2) {
    size_t rest1 = 0, rest2 = 0;
    const std::string w1 = directive_word(lex.directives[0].text, &rest1);
    const std::string w2 = directive_word(lex.directives[1].text, &rest2);
    const std::string sym1 = rest1 == std::string::npos
                                 ? ""
                                 : lex.directives[0].text.substr(rest1);
    const std::string sym2 = rest2 == std::string::npos
                                 ? ""
                                 : lex.directives[1].text.substr(rest2);
    has_pair = w1 == "ifndef" && w2 == "define";
    guard_ok = has_pair && sym1 == expected && sym2 == expected;
  }
  if (!guard_ok) {
    Finding finding{path, lex.directives.empty() ? 1 : lex.directives[0].line,
                    1, "header-hygiene",
                    "missing or non-conforming include guard; expected "
                    "'#ifndef " +
                        expected + "' / '#define " + expected +
                        "' as the first two preprocessor lines"};
    if (has_pair) {  // --fix can rewrite an existing pair, not invent one
      finding.fix = FixKind::kRewriteGuard;
      finding.fix_data = expected;
    }
    Emit(lex, out, std::move(finding));
  }

  const std::vector<Token>& toks = lex.tokens;
  // `using namespace` at namespace scope leaks into every includer.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdent(toks[i], "using") && IsIdent(toks[i + 1], "namespace") &&
        !scopes.info[i].in_function) {
      Emit(lex, out,
           {path, toks[i].line, toks[i].col, "header-hygiene",
            "'using namespace' at namespace scope in a header leaks the "
            "namespace into every includer"});
    }
  }

  // Self-containedness (include-what-you-use lite): std:: vocabulary
  // types must be backed by a direct include.
  std::set<std::string> included;
  for (const PpDirective& d : lex.directives) {
    size_t rest = 0;
    if (directive_word(d.text, &rest) != "include") continue;
    if (rest == std::string::npos) continue;
    std::string spec = d.text.substr(rest);
    if (spec.size() >= 2 && (spec.front() == '<' || spec.front() == '"')) {
      const char close = spec.front() == '<' ? '>' : '"';
      const size_t end = spec.find(close, 1);
      if (end != std::string::npos) included.insert(spec.substr(1, end - 1));
    }
  }
  std::set<std::string> reported;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "std") || !IsPunct(toks[i + 1], "::")) continue;
    const auto it = StdSymbolHeaders().find(toks[i + 2].text);
    if (it == StdSymbolHeaders().end()) continue;
    if (included.count(it->second) > 0 || reported.count(it->second) > 0)
      continue;
    reported.insert(it->second);
    Emit(lex, out,
         {path, toks[i].line, toks[i].col, "header-hygiene",
          "header uses std::" + it->first + " but does not include <" +
              it->second + "> directly (headers must be self-contained)"});
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"status-discipline",
       "calls to Status/Result-returning functions must not discard the "
       "result"},
      {"determinism",
       "bans rand()/srand/std::random_device/time(nullptr) seeds and argless "
       "clock ::now() outside util/stopwatch and bench code"},
      {"concurrency-hygiene",
       "no mutable function-local statics in non-test code; mutable members "
       "need atomic/mutex where thread-safety is documented"},
      {"header-hygiene",
       "include guards must match CHAMELEON_<DIR>_<FILE>_H_; no 'using "
       "namespace' at namespace scope in headers; headers must directly "
       "include the std headers they use"},
      {"lock-discipline",
       "members declared CHAMELEON_GUARDED_BY(mu) may only be accessed with "
       "'mu' lexically held (const member functions, constructors and "
       "destructors are exempt)"},
      {"lock-order",
       "the tree-wide lock-acquisition-order graph (direct nesting plus "
       "acquisitions reached through calls) must be acyclic; a cycle is a "
       "potential deadlock"},
      {"determinism-taint",
       "functions that transitively reach rand()/wall-clock sources outside "
       "the allowlist through the call graph are flagged, not just the "
       "leaf"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Pass 2 cross-TU rules (built on the pass-1 index)
// ---------------------------------------------------------------------------

void CheckLockDiscipline(const std::string& path, const LexResult& lex,
                         const FileIndex& file_index, const TreeIndex& tree,
                         std::vector<Finding>* out) {
  const std::vector<Token>& toks = lex.tokens;
  for (const FunctionInfo& fn : file_index.functions) {
    // Const member functions are read-only by contract and audited
    // manually; constructors/destructors run before/after any sharing.
    if (fn.class_name.empty() || fn.is_const || fn.is_ctor_dtor) continue;
    const auto guarded_it = tree.guarded.find(fn.class_name);
    if (guarded_it == tree.guarded.end()) continue;
    const std::map<std::string, std::string>& members = guarded_it->second;
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      const auto member_it = members.find(t.text);
      if (member_it == members.end()) continue;
      // `other.member_` is someone else's instance (out of scope for a
      // lexical analysis); `this->member_` is ours.
      if (i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        if (!(i >= 2 && IsIdent(toks[i - 2], "this"))) continue;
      }
      if (i > 0 && IsPunct(toks[i - 1], "::")) continue;
      const std::string needed =
          fn.class_name + "::" + member_it->second;
      bool held = false;
      std::string held_instead;
      for (const LockAcquisition& lock : fn.locks) {
        if (lock.token < i && i < lock.scope_end) {
          if (lock.mutex == needed) {
            held = true;
            break;
          }
          if (!held_instead.empty()) held_instead += ", ";
          held_instead += "'" + lock.mutex + "'";
        }
      }
      if (held) continue;
      std::string message =
          "member '" + t.text + "' of '" + fn.class_name +
          "' is declared CHAMELEON_GUARDED_BY(" + member_it->second +
          ") but is accessed without '" + member_it->second + "' held";
      if (!held_instead.empty()) {
        message += " (held instead: " + held_instead + ")";
      }
      message +=
          "; take a std::lock_guard/unique_lock/scoped_lock on '" +
          member_it->second + "' in an enclosing scope";
      Emit(lex, out, {path, t.line, t.col, "lock-discipline", message});
    }
  }
}

namespace {

/// Emits through the per-file suppression context when available (tree
/// rules place findings in arbitrary files).
void EmitTree(const std::map<std::string, const LexResult*>& lex_by_file,
              std::vector<Finding>* out, Finding finding) {
  const auto it = lex_by_file.find(finding.file);
  if (it != lex_by_file.end()) {
    Emit(*it->second, out, std::move(finding));
  } else {
    out->push_back(std::move(finding));
  }
}

}  // namespace

void CheckLockOrder(const TreeIndex& tree,
                    const std::map<std::string, const LexResult*>& lex_by_file,
                    std::vector<Finding>* out) {
  // Adjacency over canonical mutex names; node and edge iteration both
  // follow map order, so the SCC decomposition is deterministic.
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto& [key, edge] : tree.edges) {
    adjacency[key.first].push_back(key.second);
    adjacency[key.second];
  }

  std::map<std::string, int> visit_index, low_link;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> components;
  std::function<void(const std::string&)> strong_connect =
      [&](const std::string& v) {
        visit_index[v] = low_link[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const std::string& w : adjacency[v]) {
          if (visit_index.count(w) == 0) {
            strong_connect(w);
            low_link[v] = std::min(low_link[v], low_link[w]);
          } else if (on_stack.count(w) > 0) {
            low_link[v] = std::min(low_link[v], visit_index[w]);
          }
        }
        if (low_link[v] == visit_index[v]) {
          std::vector<std::string> component;
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            component.push_back(std::move(w));
            if (component.back() == v) break;
          }
          std::sort(component.begin(), component.end());
          components.push_back(std::move(component));
        }
      };
  for (const auto& [node, targets] : adjacency) {
    (void)targets;
    if (visit_index.count(node) == 0) strong_connect(node);
  }
  std::sort(components.begin(), components.end());

  for (const std::vector<std::string>& component : components) {
    bool cyclic = component.size() > 1;
    if (!cyclic) {  // single node: cyclic iff it has a self-edge
      cyclic = tree.edges.count({component[0], component[0]}) > 0;
    }
    if (!cyclic) continue;
    const std::set<std::string> members(component.begin(), component.end());
    const LockOrderEdge* anchor = nullptr;
    std::string detail;
    for (const auto& [key, edge] : tree.edges) {
      if (members.count(key.first) == 0 || members.count(key.second) == 0) {
        continue;
      }
      if (anchor == nullptr) anchor = &edge;
      if (!detail.empty()) detail += "; ";
      detail += "'" + key.first + "' then '" + key.second + "' at " +
                edge.site;
    }
    if (anchor == nullptr) continue;
    std::string names;
    for (const std::string& name : component) {
      if (!names.empty()) names += ", ";
      names += "'" + name + "'";
    }
    EmitTree(lex_by_file, out,
             {anchor->file, anchor->line, anchor->col, "lock-order",
              "lock-order cycle (potential deadlock) among " + names + ": " +
                  detail +
                  "; acquire these mutexes in one global order everywhere, "
                  "or collapse them into one"});
  }
}

void CheckDeterminismTaint(
    const TreeIndex& tree,
    const std::map<std::string, const LexResult*>& lex_by_file,
    std::vector<Finding>* out) {
  const size_t n = tree.functions.size();
  // Reverse name-based call graph (callee index -> caller indices).
  std::vector<std::vector<size_t>> callers(n);
  for (size_t caller = 0; caller < n; ++caller) {
    std::set<size_t> seen;
    for (const CallSite& call : tree.functions[caller].calls) {
      if (StdVocabularyNames().count(call.callee) > 0) continue;
      const auto it = tree.by_name.find(call.callee);
      if (it == tree.by_name.end()) continue;
      for (size_t callee : it->second) {
        // Same exclusion the index applies to lock-order resolution: an
        // explicit-receiver call is on another object, so it does not
        // resolve back into the caller's own class.
        if (call.via_object &&
            tree.functions[callee].class_name ==
                tree.functions[caller].class_name) {
          continue;
        }
        if (callee != caller && seen.insert(callee).second) {
          callers[callee].push_back(caller);
        }
      }
    }
  }

  // BFS from taint origins up the caller graph; `next` records the step
  // toward the origin, so each flagged function carries its (shortest)
  // offending call chain. Sanctioned functions neither originate nor
  // propagate taint: calling a stopwatch is how timing is *supposed* to
  // happen.
  std::vector<int> next(n, -1);
  std::vector<char> tainted(n, 0);
  std::vector<size_t> queue;
  for (size_t i = 0; i < n; ++i) {
    if (!tree.functions[i].sanctioned && !tree.functions[i].nondet.empty()) {
      tainted[i] = 1;
      queue.push_back(i);
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    const size_t u = queue[head];
    for (size_t caller : callers[u]) {
      if (tainted[caller] != 0 || tree.functions[caller].sanctioned) continue;
      tainted[caller] = 1;
      next[caller] = static_cast<int>(u);
      queue.push_back(caller);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    // Origins themselves are the leaf chameleon-determinism rule's job.
    if (tainted[i] == 0 || next[i] < 0) continue;
    const FunctionInfo& fn = tree.functions[i];
    std::string chain = "'" + fn.qualified + "'";
    size_t cursor = i;
    while (next[cursor] >= 0) {
      cursor = static_cast<size_t>(next[cursor]);
      chain += " -> '" + tree.functions[cursor].qualified + "'";
    }
    const FunctionInfo& origin = tree.functions[cursor];
    const NondetUse& source = origin.nondet.front();
    EmitTree(lex_by_file, out,
             {fn.file, fn.line, fn.col, "determinism-taint",
              "'" + fn.qualified + "' transitively reaches nondeterminism "
              "source " + source.what + " (" + origin.file + ":" +
                  std::to_string(source.line) + ") via " + chain +
                  "; thread a seeded util::Rng through the call instead, or "
                  "allowlist the helper if timing is its purpose"});
  }
}

std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  if (rel.rfind("./", 0) == 0) rel = rel.substr(2);
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string guard = "CHAMELEON_";
  for (char c : rel) {
    if (c == '.') break;  // drop the extension
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += "_H_";
  return guard;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ":" +
         std::to_string(finding.col) + ": [chameleon-" + finding.rule + "] " +
         finding.message;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& source, const LexResult& lex,
                              const FunctionRegistry& registry,
                              const LintOptions& options) {
  std::vector<Finding> out;
  const ScopeMap scopes = ComputeScopeMap(lex.tokens);
  if (!options.IsDisabled("status-discipline")) {
    CheckStatusDiscipline(path, lex, scopes, registry, &out);
  }
  if (!options.IsDisabled("determinism")) {
    CheckDeterminism(path, lex, options, &out);
  }
  if (!options.IsDisabled("concurrency-hygiene")) {
    CheckConcurrencyHygiene(path, source, lex, scopes, &out);
  }
  if (!options.IsDisabled("header-hygiene")) {
    CheckHeaderHygiene(path, lex, scopes, &out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace chameleon_lint
