#ifndef CHAMELEON_TOOLS_ANALYZER_TOKEN_H_
#define CHAMELEON_TOOLS_ANALYZER_TOKEN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace chameleon_lint {

/// Lexical class of a token. The lexer is deliberately coarse: rules work
/// on identifier/punctuation shapes, not a full grammar.
enum class TokenKind {
  kIdentifier,  // keywords included; rules compare text directly
  kNumber,      // pp-number (handles 0x1F, 1'000'000, 1e-3)
  kString,      // "..." including raw strings; text is the raw lexeme
  kCharLiteral, // '...'
  kPunct,       // single punctuation char, or the digraphs :: and ->
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

/// One logical preprocessor line (backslash continuations folded).
struct PpDirective {
  std::string text;  // full text after '#', trimmed, e.g. "ifndef FOO_H_"
  int line = 0;
};

/// Result of lexing one file. `nolint` maps a line number to the set of
/// rule names suppressed on that line; the sentinel "*" suppresses every
/// rule (a bare `// NOLINT`). NOLINTNEXTLINE entries are already folded
/// onto the line they protect.
struct LexResult {
  std::vector<Token> tokens;
  std::vector<PpDirective> directives;
  std::map<int, std::set<std::string>> nolint;
};

/// Tokenizes C++ source. Never fails: unterminated constructs are closed
/// at end of file (the linter must degrade gracefully on odd input).
LexResult Lex(const std::string& source);

/// True when findings for `rule` are suppressed on `line`.
bool IsSuppressed(const LexResult& lex, int line, const std::string& rule);

}  // namespace chameleon_lint

#endif  // CHAMELEON_TOOLS_ANALYZER_TOKEN_H_
