#include "tools/analyzer/index.h"

#include <algorithm>

namespace chameleon_lint {
namespace {

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Classifies the brace at `open` given the statement window that leads
/// up to it (tokens since the previous ; { or } at the same nesting).
/// When the brace opens a type, `*type_name` receives the type's name
/// ("" for anonymous types).
ScopeKind ClassifyBrace(const std::vector<Token>& tokens, size_t open,
                        const ScopeInfo& parent, std::string* type_name) {
  type_name->clear();
  size_t begin = open;
  while (begin > 0) {
    const Token& t = tokens[begin - 1];
    if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}")) break;
    --begin;
  }
  if (begin == open) {  // empty window: bare block or element brace
    return parent.in_function ? ScopeKind::kFunction : ScopeKind::kInitializer;
  }
  bool has_class_key = false, has_paren_open = false, has_paren_close = false,
       has_assign = false;
  size_t class_key = 0;
  for (size_t i = begin; i < open; ++i) {
    const Token& t = tokens[i];
    if (IsIdent(t, "namespace")) return ScopeKind::kNamespace;
    if (IsIdent(t, "class") || IsIdent(t, "struct") || IsIdent(t, "union") ||
        IsIdent(t, "enum")) {
      if (!has_class_key) class_key = i;
      has_class_key = true;
    } else if (IsPunct(t, "(")) {
      has_paren_open = true;
    } else if (IsPunct(t, ")")) {
      has_paren_close = true;
    } else if (IsPunct(t, "=")) {
      has_assign = true;
    }
  }
  if (has_class_key && !has_paren_open) {
    // The type's name: first identifier after the class-key, skipping
    // attribute brackets and the `class` of `enum class`.
    int bracket_depth = 0;
    for (size_t i = class_key + 1; i < open; ++i) {
      const Token& t = tokens[i];
      if (IsPunct(t, "[")) ++bracket_depth;
      if (IsPunct(t, "]")) --bracket_depth;
      if (bracket_depth > 0 || t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "class" || t.text == "struct" || t.text == "final") {
        continue;
      }
      *type_name = t.text;
      break;
    }
    return ScopeKind::kType;
  }
  const Token& last = tokens[open - 1];
  if (IsPunct(last, ")") || IsPunct(last, "]") || IsIdent(last, "const") ||
      IsIdent(last, "noexcept") || IsIdent(last, "mutable") ||
      IsIdent(last, "override") || IsIdent(last, "final") ||
      IsIdent(last, "try") || IsIdent(last, "do") || IsIdent(last, "else")) {
    return ScopeKind::kFunction;
  }
  if (has_assign) return ScopeKind::kInitializer;
  if (has_paren_close) return ScopeKind::kFunction;
  if (parent.in_function) return ScopeKind::kFunction;
  return ScopeKind::kInitializer;
}

/// Matches the "<...>" starting at `open` (a "<" token); returns the
/// index of the closing ">" or npos. Tolerates ">>"-style nesting since
/// the lexer emits single-character angle tokens.
size_t MatchAngle(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], "<")) ++depth;
    if (IsPunct(tokens[i], ">")) {
      if (--depth == 0) return i;
    }
    // A template argument list never crosses these.
    if (IsPunct(tokens[i], ";") || IsPunct(tokens[i], "{")) return std::string::npos;
  }
  return std::string::npos;
}

constexpr const char* kLockClasses[] = {"lock_guard", "unique_lock",
                                        "scoped_lock", "shared_lock"};

bool IsLockClass(const std::string& name) {
  for (const char* lock_class : kLockClasses) {
    if (name == lock_class) return true;
  }
  return false;
}

/// Extracts the mutex names from the argument list of a lock
/// declaration ("(" at `open`, matching ")" at `close`). Returns empty
/// when the declaration does not acquire (std::defer_lock).
std::vector<std::string> LockArgMutexes(const std::vector<Token>& tokens,
                                        size_t open, size_t close) {
  std::vector<std::string> mutexes;
  std::string last_ident;
  int depth = 0;
  bool deferred = false;
  auto flush_arg = [&] {
    if (!last_ident.empty()) mutexes.push_back(last_ident);
    last_ident.clear();
  };
  for (size_t i = open + 1; i < close; ++i) {
    const Token& t = tokens[i];
    if (IsPunct(t, "(") || IsPunct(t, "[") || IsPunct(t, "{")) ++depth;
    if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) --depth;
    if (depth > 0) continue;
    if (IsPunct(t, ",")) {
      flush_arg();
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "defer_lock") deferred = true;
    if (t.text == "std" || t.text == "this" || t.text == "defer_lock" ||
        t.text == "adopt_lock" || t.text == "try_to_lock") {
      continue;
    }
    last_ident = t.text;  // keep the last identifier of the argument
  }
  flush_arg();
  if (deferred) mutexes.clear();
  return mutexes;
}

/// Statement-ish keywords that look like calls lexically.
bool IsCallKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",    "switch", "return", "sizeof",
      "catch",  "new",      "delete",   "throw",  "co_return",
      "co_yield", "co_await", "alignof", "decltype", "static_cast",
      "static_assert", "const_cast", "reinterpret_cast", "dynamic_cast",
      "typeid", "noexcept", "assert",
  };
  return kKeywords.count(name) > 0;
}

}  // namespace

const std::set<std::string>& StdVocabularyNames() {
  static const std::set<std::string> kNames = {
      "size",    "empty",   "front",   "back",   "begin",   "end",
      "clear",   "push_back", "pop_back", "pop_front", "push_front",
      "push",    "pop",     "top",     "append", "length",  "compare",
      "emplace_back", "emplace", "insert", "erase",  "find",    "count",
      "load",    "store",   "exchange", "fetch_add", "reset",  "release",
      "get",     "at",      "data",    "str",    "c_str",   "substr",
      "max",     "min",     "swap",    "wait",   "notify_one",
      "notify_all", "flush", "close",  "open",   "good",    "fail",
      "lock",    "unlock",  "try_lock", "value", "has_value", "resize",
      "reserve", "first",   "second",  "move",   "forward",
  };
  return kNames;
}

const std::string& ScopeMap::TypeName(size_t token) const {
  static const std::string kEmpty;
  if (token >= info.size()) return kEmpty;
  const int id = info[token].type_id;
  if (id < 0 || static_cast<size_t>(id) >= type_names.size()) return kEmpty;
  return type_names[id];
}

ScopeMap ComputeScopeMap(const std::vector<Token>& tokens) {
  ScopeMap out;
  out.info.resize(tokens.size());
  std::vector<ScopeInfo> stack;
  ScopeInfo current;  // top level behaves like namespace scope
  std::string type_name;
  for (size_t i = 0; i < tokens.size(); ++i) {
    out.info[i] = current;
    const Token& t = tokens[i];
    if (IsPunct(t, "{")) {
      const ScopeKind kind = ClassifyBrace(tokens, i, current, &type_name);
      stack.push_back(current);
      current.innermost = kind;
      current.in_function = current.in_function || kind == ScopeKind::kFunction;
      if (kind == ScopeKind::kType) {
        current.type_id = static_cast<int>(out.type_names.size());
        out.type_names.push_back(type_name);
      }
    } else if (IsPunct(t, "}")) {
      if (!stack.empty()) {
        current = stack.back();
        stack.pop_back();
      }
    }
  }
  return out;
}

size_t MatchParen(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], "(")) ++depth;
    if (IsPunct(tokens[i], ")")) {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::vector<size_t> ComputeBraceMatch(const std::vector<Token>& tokens) {
  std::vector<size_t> match(tokens.size(), std::string::npos);
  std::vector<size_t> stack;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], "{")) {
      stack.push_back(i);
    } else if (IsPunct(tokens[i], "}") && !stack.empty()) {
      match[stack.back()] = i;
      match[i] = stack.back();
      stack.pop_back();
    }
  }
  return match;
}

namespace {

/// Scans one function body for lock acquisitions, call sites (with the
/// lexically held mutex set), and direct nondeterminism sources.
void ScanBody(const std::vector<Token>& toks,
              const std::vector<size_t>& brace_match, const LexResult& lex,
              const IndexOptions& options, FunctionInfo* fn) {
  const size_t begin = fn->body_begin;
  const size_t end = fn->body_end;
  std::vector<size_t> open_braces = {begin};

  auto held_at = [&](size_t token) {
    std::vector<std::string> held;
    for (const LockAcquisition& lock : fn->locks) {
      if (lock.token < token && token < lock.scope_end) {
        held.push_back(lock.mutex);
      }
    }
    return held;
  };
  auto nondet_suppressed = [&](int line) {
    for (const std::string& rule : options.nondet_suppression_rules) {
      if (IsSuppressed(lex, line, rule)) return true;
    }
    return false;
  };

  for (size_t i = begin + 1; i < end; ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      open_braces.push_back(i);
      continue;
    }
    if (IsPunct(t, "}")) {
      if (open_braces.size() > 1) open_braces.pop_back();
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool member_access =
        i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));

    // Lock declaration: [std::]lock_guard[<...>] name(mu[, mu2...]);
    if (IsLockClass(t.text) && !member_access) {
      size_t k = i + 1;
      if (k < end && IsPunct(toks[k], "<")) {
        const size_t close_angle = MatchAngle(toks, k);
        if (close_angle == std::string::npos) continue;
        k = close_angle + 1;
      }
      if (k >= end || toks[k].kind != TokenKind::kIdentifier) continue;
      ++k;  // the lock variable's name
      if (k >= end || !(IsPunct(toks[k], "(") || IsPunct(toks[k], "{"))) {
        continue;
      }
      const size_t close = IsPunct(toks[k], "(")
                               ? MatchParen(toks, k)
                               : brace_match[k];
      if (close == std::string::npos || close > end) continue;
      const size_t scope_end = brace_match[open_braces.back()];
      for (std::string mutex : LockArgMutexes(toks, k, close)) {
        // Bare identifiers in member functions mean a member (or a
        // local shadowing one — a documented imprecision).
        if (!fn->class_name.empty()) mutex = fn->class_name + "::" + mutex;
        fn->locks.push_back({std::move(mutex), i,
                             scope_end == std::string::npos ? end : scope_end,
                             t.line, t.col});
      }
      i = close;  // the variable name and args are not call sites
      continue;
    }

    const bool called = i + 1 < end && IsPunct(toks[i + 1], "(");

    // Direct nondeterminism sources — the same shapes the leaf
    // chameleon-determinism rule flags.
    if (!member_access && !nondet_suppressed(t.line)) {
      if ((t.text == "rand" || t.text == "srand") && called) {
        fn->nondet.push_back({t.text + "()", t.line, t.col});
      } else if (t.text == "random_device") {
        fn->nondet.push_back({"std::random_device", t.line, t.col});
      } else if (t.text == "time" && called && i + 3 < end &&
                 (IsIdent(toks[i + 2], "nullptr") ||
                  IsIdent(toks[i + 2], "NULL") || toks[i + 2].text == "0") &&
                 IsPunct(toks[i + 3], ")")) {
        fn->nondet.push_back({"time(nullptr)", t.line, t.col});
      }
    }
    if (t.text == "now" && called && i > 0 && IsPunct(toks[i - 1], "::") &&
        i + 2 < end && IsPunct(toks[i + 2], ")") &&
        !nondet_suppressed(t.line)) {
      fn->nondet.push_back({"wall-clock ::now()", t.line, t.col});
    }

    // Call site.
    if (called && !IsCallKeyword(t.text) && t.text != kGuardedByMacro) {
      const bool via_object =
          member_access && !(i >= 2 && IsIdent(toks[i - 2], "this"));
      fn->calls.push_back({t.text, t.line, t.col, via_object, held_at(i)});
    }
  }
}

}  // namespace

FileIndex BuildFileIndex(const std::string& path, const LexResult& lex,
                         const IndexOptions& options) {
  FileIndex out;
  const std::vector<Token>& toks = lex.tokens;
  const ScopeMap scopes = ComputeScopeMap(toks);
  const std::vector<size_t> brace_match = ComputeBraceMatch(toks);

  bool sanctioned = false;
  for (const std::string& allowed : options.determinism_allowlist) {
    if (Contains(path, allowed)) sanctioned = true;
  }

  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;

    // Guarded-member annotation: `T member_ CHAMELEON_GUARDED_BY(mu);`
    if (toks[i].text == kGuardedByMacro) {
      if (i >= 1 && i + 3 < toks.size() && IsPunct(toks[i + 1], "(") &&
          toks[i + 2].kind == TokenKind::kIdentifier &&
          IsPunct(toks[i + 3], ")") &&
          toks[i - 1].kind == TokenKind::kIdentifier &&
          scopes.info[i].innermost == ScopeKind::kType &&
          !scopes.info[i].in_function) {
        const std::string& class_name = scopes.TypeName(i);
        if (!class_name.empty()) {
          out.guarded.push_back({class_name, toks[i - 1].text,
                                 toks[i + 2].text, path, toks[i].line});
        }
      }
      continue;
    }

    // Function definition: ident "(" at namespace/type scope with a
    // body. Declarations (";", "= default", ...) are skipped.
    if (!IsPunct(toks[i + 1], "(")) continue;
    const ScopeInfo& scope = scopes.info[i];
    if (scope.in_function || scope.innermost == ScopeKind::kInitializer) {
      continue;
    }
    const std::string& name = toks[i].text;
    if (name == "operator" || (i > 0 && IsIdent(toks[i - 1], "operator"))) {
      continue;
    }
    const size_t close = MatchParen(toks, i + 1);
    if (close == std::string::npos) continue;

    // Scan from the parameter list's ")" to the body "{" (definition)
    // or a declaration terminator.
    bool is_const = false;
    bool in_init_list = false;
    size_t body = std::string::npos;
    for (size_t j = close + 1; j < toks.size();) {
      const Token& t = toks[j];
      if (IsPunct(t, ";") || IsPunct(t, "=") || IsPunct(t, ",")) break;
      if (IsPunct(t, "(")) {  // noexcept(...), initializer args
        const size_t inner = MatchParen(toks, j);
        if (inner == std::string::npos) break;
        j = inner + 1;
        continue;
      }
      if (IsPunct(t, ":") && !IsPunct(toks[j - 1], ":") &&
          (j + 1 >= toks.size() || !IsPunct(toks[j + 1], ":"))) {
        in_init_list = true;
        ++j;
        continue;
      }
      if (IsPunct(t, "{")) {
        // In a ctor init list, `member{...}` braces follow an identifier
        // or a closing template ">"; the body brace does not.
        if (in_init_list && j > 0 &&
            (toks[j - 1].kind == TokenKind::kIdentifier ||
             IsPunct(toks[j - 1], ">"))) {
          const size_t inner = brace_match[j];
          if (inner == std::string::npos) break;
          j = inner + 1;
          continue;
        }
        body = j;
        break;
      }
      if (IsIdent(t, "const")) is_const = true;
      ++j;
    }
    if (body == std::string::npos || brace_match[body] == std::string::npos) {
      continue;
    }

    // Qualified-name prefix (Class::Name) and the enclosing class.
    size_t head = i;
    std::string class_name;
    if (head >= 2 && IsPunct(toks[head - 1], "::") &&
        toks[head - 2].kind == TokenKind::kIdentifier) {
      class_name = toks[head - 2].text;
    } else {
      class_name = scopes.TypeName(i);
    }
    const bool is_dtor = i > 0 && IsPunct(toks[i - 1], "~");
    const bool is_ctor = !class_name.empty() && name == class_name;

    FunctionInfo fn;
    fn.name = name;
    fn.class_name = class_name;
    fn.qualified = class_name.empty() ? name : class_name + "::" + name;
    if (is_dtor) fn.qualified = class_name + "::~" + name;
    fn.file = path;
    fn.line = toks[i].line;
    fn.col = toks[i].col;
    fn.is_const = is_const;
    fn.is_ctor_dtor = is_ctor || is_dtor;
    fn.is_dtor = is_dtor;
    fn.sanctioned = sanctioned;
    fn.body_begin = body;
    fn.body_end = brace_match[body];
    ScanBody(toks, brace_match, lex, options, &fn);
    out.functions.push_back(std::move(fn));
    i = body;  // resume after the signature; nested defs cannot start here
  }
  return out;
}

TreeIndex BuildTreeIndex(const std::vector<const FileIndex*>& files) {
  TreeIndex tree;
  for (const FileIndex* file : files) {
    for (const GuardedMember& g : file->guarded) {
      auto& members = tree.guarded[g.class_name];
      if (members.emplace(g.member, g.mutex).second) {
        tree.guarded_decls.push_back(g);
      }
    }
    for (const FunctionInfo& fn : file->functions) {
      const std::string key = fn.is_dtor ? "~" + fn.name : fn.name;
      tree.by_name[key].push_back(tree.functions.size());
      tree.functions.push_back(fn);
    }
  }

  // May-acquire fixpoint over the name-based call graph. Calls through
  // std-vocabulary names are excluded (see StdVocabularyNames).
  const size_t n = tree.functions.size();
  tree.may_acquire.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (const LockAcquisition& lock : tree.functions[i].locks) {
      tree.may_acquire[i].insert(lock.mutex);
    }
  }
  const auto resolves_to = [&tree](const CallSite& call,
                                   const FunctionInfo& caller,
                                   size_t callee) {
    // An explicit-receiver call is visibly on another object; name-based
    // resolution back into the caller's own class would manufacture
    // self-deadlocks out of delegation (digest_.Quantile inside
    // Histogram::Quantile).
    return !(call.via_object &&
             tree.functions[callee].class_name == caller.class_name);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      for (const CallSite& call : tree.functions[i].calls) {
        if (StdVocabularyNames().count(call.callee) > 0) continue;
        const auto it = tree.by_name.find(call.callee);
        if (it == tree.by_name.end()) continue;
        for (size_t callee : it->second) {
          if (!resolves_to(call, tree.functions[i], callee)) continue;
          for (const std::string& mutex : tree.may_acquire[callee]) {
            if (tree.may_acquire[i].insert(mutex).second) changed = true;
          }
        }
      }
    }
  }

  // Lock-order edges: direct (B acquired while A held) and via calls
  // into functions that may acquire. First witness wins; functions are
  // visited in file order, so the edge set is deterministic.
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const FunctionInfo& fn, int line, int col) {
    const auto key = std::make_pair(from, to);
    if (tree.edges.count(key) > 0) return;
    LockOrderEdge edge;
    edge.site = fn.file + ":" + std::to_string(line) + ", in '" +
                fn.qualified + "'";
    edge.file = fn.file;
    edge.line = line;
    edge.col = col;
    tree.edges.emplace(key, std::move(edge));
  };
  for (const FunctionInfo& fn : tree.functions) {
    for (const LockAcquisition& lock : fn.locks) {
      for (const LockAcquisition& held : fn.locks) {
        // Same-mutex re-acquisition yields a self-edge: an immediate
        // deadlock with std::mutex, reported as a one-node cycle.
        if (held.token < lock.token && lock.token < held.scope_end) {
          add_edge(held.mutex, lock.mutex, fn, lock.line, lock.col);
        }
      }
    }
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      if (StdVocabularyNames().count(call.callee) > 0) continue;
      const auto it = tree.by_name.find(call.callee);
      if (it == tree.by_name.end()) continue;
      std::set<std::string> targets;
      for (size_t callee : it->second) {
        if (!resolves_to(call, fn, callee)) continue;
        targets.insert(tree.may_acquire[callee].begin(),
                       tree.may_acquire[callee].end());
      }
      for (const std::string& held : call.held) {
        for (const std::string& target : targets) {
          add_edge(held, target, fn, call.line, call.col);
        }
      }
    }
  }
  return tree;
}

}  // namespace chameleon_lint
