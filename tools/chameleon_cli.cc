// Command-line front end for the Chameleon library.
//
//   chameleon_cli audit  --dataset=feret|utkface --tau=N [--n=N]
//   chameleon_cli repair --dataset=feret|utkface --tau=N
//                        [--strategy=linucb|similar|random|noguide]
//                        [--mask=accurate|moderate|imprecise]
//                        [--alpha=0.1] [--nu=0.3] [--seed=S] [--out=DIR]
//                        [--rejection-batch=N] [--batch-size=N]
//                        [--batch-window=MS] [--backends=N]
//                        [--router=greedy|linucb]
//                        [--metrics] [--metrics-out=F] [--trace-out=F]
//                        [--journal-out=F] [--openmetrics-out=F]
//                        [--trace-json-out=F]
//   chameleon_cli plan   --dataset=feret|utkface --tau=N
//                        [--algorithm=greedy|mingap|random]
//
// `audit` reports the Maximal Uncovered Patterns; `plan` prints the
// combination-selection plan without touching a foundation model;
// `repair` runs the full pipeline against the simulated foundation model
// and optionally saves the repaired corpus (CSV + PNM) to --out.
//
// Observability (DESIGN.md §9): any of --metrics / --metrics-out= /
// --trace-out= / --journal-out= attaches an obs::Observability sink to
// the repair run. --metrics prints the registry as a table; the *-out
// flags export metrics / spans / the run journal as JSONL files.
// Instrumentation never changes which tuples are accepted.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/core/chameleon.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/datasets/feret.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/backend_pool.h"
#include "src/fm/corpus_io.h"
#include "src/fm/deadline.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/export.h"
#include "src/obs/observability.h"
#include "src/util/table_printer.h"

namespace {

using namespace chameleon;

/// The in-flight repair's cancel hook. SIGINT/SIGTERM mark it cancelled
/// (an atomic store — async-signal-safe); the rejection loop observes
/// the flag at its next round boundary, parks the remaining plan, and
/// the normal exit path finalizes every streamed sink. A killed run
/// therefore leaves journals and traces `obsctl report` accepts, not
/// ragged files.
std::atomic<fm::Deadline*> g_repair_deadline{nullptr};

void HandleRepairSignal(int /*signum*/) {
  fm::Deadline* deadline = g_repair_deadline.load(std::memory_order_acquire);
  if (deadline != nullptr) deadline->MarkCancelled();
}

/// Minimal --key=value parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

struct LoadedCorpus {
  fm::Corpus corpus;
  fm::FaceStyleFn style_fn;
  image::SceneStyle scene;
};

bool LoadDataset(const Flags& flags, const embedding::SimulatedEmbedder& embedder,
                 bool with_images, LoadedCorpus* out) {
  const std::string name = flags.Get("dataset", "feret");
  if (name == "feret") {
    datasets::FeretOptions options;
    options.render.render_images = with_images;
    auto corpus = datasets::MakeFeret(&embedder, options);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return false;
    }
    out->corpus = std::move(*corpus);
    out->style_fn = datasets::FeretFaceStyleFn();
    out->scene = datasets::FeretScene();
    return true;
  }
  if (name == "utkface") {
    datasets::UtkFaceOptions options;
    options.render.render_images = with_images;
    options.num_tuples = static_cast<int>(flags.GetInt("n", 20000));
    auto corpus = datasets::MakeUtkFace(&embedder, options);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return false;
    }
    out->corpus = std::move(*corpus);
    out->style_fn = datasets::UtkFaceStyleFn();
    out->scene = datasets::UtkFaceScene();
    return true;
  }
  std::fprintf(stderr, "unknown --dataset=%s (feret|utkface)\n",
               name.c_str());
  return false;
}

std::vector<coverage::Mup> FindMups(const fm::Corpus& corpus, int64_t tau) {
  const auto counter = *coverage::PatternCounter::FromDataset(corpus.dataset);
  coverage::MupFinder finder(corpus.dataset.schema(), counter);
  coverage::MupFinderOptions options;
  options.tau = tau;
  return finder.FindMups(options);
}

int CmdAudit(const Flags& flags) {
  const embedding::SimulatedEmbedder embedder;
  LoadedCorpus loaded;
  if (!LoadDataset(flags, embedder, /*with_images=*/false, &loaded)) return 1;
  const int64_t tau = flags.GetInt("tau", 100);

  const auto mups = FindMups(loaded.corpus, tau);
  std::printf("%zu tuples; %zu MUP(s) at tau=%lld\n",
              loaded.corpus.dataset.size(), mups.size(),
              static_cast<long long>(tau));
  util::TablePrinter table({"level", "pattern", "subgroup", "count", "gap"});
  for (const auto& m : mups) {
    table.AddRow({util::Fmt(m.Level()), m.pattern.ToString(),
                  m.pattern.ToString(loaded.corpus.dataset.schema()),
                  util::Fmt(m.count), util::Fmt(m.gap)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdPlan(const Flags& flags) {
  const embedding::SimulatedEmbedder embedder;
  LoadedCorpus loaded;
  if (!LoadDataset(flags, embedder, /*with_images=*/false, &loaded)) return 1;
  const int64_t tau = flags.GetInt("tau", 100);
  const std::string algorithm = flags.Get("algorithm", "greedy");

  const auto mups = FindMups(loaded.corpus, tau);
  if (mups.empty()) {
    std::printf("fully covered at tau=%lld; nothing to plan\n",
                static_cast<long long>(tau));
    return 0;
  }
  const auto targets = coverage::MupFinder::MinLevel(mups);
  const auto& schema = loaded.corpus.dataset.schema();
  core::CombinationPlan plan;
  util::Rng rng(flags.GetInt("seed", 99));
  if (algorithm == "greedy") {
    plan = core::GreedySelect(schema, targets);
  } else if (algorithm == "mingap") {
    plan = core::MinGapSelect(schema, mups, targets[0].Level());
  } else if (algorithm == "random") {
    plan = core::RandomSelect(schema, mups, targets[0].Level(), &rng);
  } else {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
    return 1;
  }

  std::printf("%s plan for %zu level-%d MUP(s): %lld images total\n",
              algorithm.c_str(), targets.size(), targets[0].Level(),
              static_cast<long long>(core::PlanTotal(plan)));
  util::TablePrinter table({"combination", "count"});
  for (const auto& entry : plan) {
    table.AddRow({schema.CombinationToString(entry.values),
                  util::Fmt(entry.count)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdRepair(const Flags& flags) {
  const embedding::SimulatedEmbedder embedder;
  LoadedCorpus loaded;
  if (!LoadDataset(flags, embedder, /*with_images=*/true, &loaded)) return 1;

  core::ChameleonOptions options;
  options.tau = flags.GetInt("tau", 100);
  options.seed = flags.GetInt("seed", 99);
  options.rejection.quality_alpha = flags.GetDouble("alpha", 0.1);
  options.rejection.svm.nu = flags.GetDouble("nu", 0.3);

  const std::string strategy = flags.Get("strategy", "linucb");
  if (strategy == "linucb") {
    options.guide_strategy = core::GuideStrategy::kLinUcb;
  } else if (strategy == "similar") {
    options.guide_strategy = core::GuideStrategy::kSimilarTuple;
  } else if (strategy == "random") {
    options.guide_strategy = core::GuideStrategy::kRandomGuide;
  } else if (strategy == "noguide") {
    options.guide_strategy = core::GuideStrategy::kNoGuide;
  } else {
    std::fprintf(stderr, "unknown --strategy=%s\n", strategy.c_str());
    return 1;
  }
  const std::string mask = flags.Get("mask", "moderate");
  if (mask == "accurate") {
    options.mask_level = image::MaskLevel::kAccurate;
  } else if (mask == "moderate") {
    options.mask_level = image::MaskLevel::kModerate;
  } else if (mask == "imprecise") {
    options.mask_level = image::MaskLevel::kImprecise;
  } else {
    std::fprintf(stderr, "unknown --mask=%s\n", mask.c_str());
    return 1;
  }

  // Batched transport and the multi-backend pool (DESIGN.md §11). The
  // transport batch can never exceed the rejection round, so raising
  // --batch-size usually wants --rejection-batch raised with it.
  options.rejection_batch = static_cast<int>(
      flags.GetInt("rejection-batch", options.rejection_batch));
  options.fm_batch_size = static_cast<int>(flags.GetInt("batch-size", 0));
  options.batch_window_ms = flags.GetDouble("batch-window", 5.0);
  const std::string router = flags.Get("router", "greedy");
  if (router == "greedy") {
    options.backend_router = fm::BackendRouterKind::kGreedyCost;
  } else if (router == "linucb") {
    options.backend_router = fm::BackendRouterKind::kLinUcb;
  } else {
    std::fprintf(stderr, "unknown --router=%s\n", router.c_str());
    return 1;
  }
  const int num_backends = static_cast<int>(flags.GetInt("backends", 1));
  if (num_backends < 1) {
    std::fprintf(stderr, "--backends must be >= 1\n");
    return 1;
  }

  // Streaming-corpus mode (DESIGN.md §14): maintain the MUP frontier
  // incrementally instead of recomputing the lattice per repair call.
  // Accepted tuples and reports are bit-identical either way.
  options.incremental_coverage = flags.Has("incremental-coverage");

  const std::string metrics_out = flags.Get("metrics-out", "");
  const std::string trace_out = flags.Get("trace-out", "");
  const std::string journal_out = flags.Get("journal-out", "");
  const std::string openmetrics_out = flags.Get("openmetrics-out", "");
  const std::string trace_json_out = flags.Get("trace-json-out", "");
  // Two export flags writing the same path would silently clobber one
  // another; refuse up front.
  const std::pair<const char*, const std::string*> out_flags[] = {
      {"--metrics-out", &metrics_out},       {"--trace-out", &trace_out},
      {"--journal-out", &journal_out},       {"--openmetrics-out",
                                              &openmetrics_out},
      {"--trace-json-out", &trace_json_out}};
  for (size_t i = 0; i < std::size(out_flags); ++i) {
    for (size_t j = i + 1; j < std::size(out_flags); ++j) {
      if (!out_flags[i].second->empty() &&
          *out_flags[i].second == *out_flags[j].second) {
        std::fprintf(stderr, "%s and %s both point at %s\n",
                     out_flags[i].first, out_flags[j].first,
                     out_flags[i].second->c_str());
        return 2;
      }
    }
  }
  obs::Observability observability;
  // --request-id tags every journal line and span with a stable id
  // (DESIGN.md §15) — the same id chameleond stamps on its side, which is
  // how a daemon request's journal is checked byte-for-byte against the
  // equivalent standalone run. Setting it implies observing.
  const std::string request_id = flags.Get("request-id", "");
  const bool observe = flags.Has("metrics") || !metrics_out.empty() ||
                       !trace_out.empty() || !journal_out.empty() ||
                       !openmetrics_out.empty() || !trace_json_out.empty() ||
                       !request_id.empty();
  if (observe) options.observability = &observability;
  if (!request_id.empty()) observability.set_request_id(request_id);

  // Journal and trace sinks stream append+flush per line so a killed run
  // still leaves an analyzable prefix on disk (obsctl tolerates the
  // ragged final line).
  if (!journal_out.empty()) {
    const util::Status streaming = observability.journal.StreamTo(journal_out);
    if (!streaming.ok()) {
      std::fprintf(stderr, "journal export failed: %s\n",
                   streaming.ToString().c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    const util::Status streaming = observability.tracer.StreamTo(trace_out);
    if (!streaming.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   streaming.ToString().c_str());
      return 1;
    }
  }

  // Graceful interruption: Ctrl-C cancels the run's Deadline instead of
  // killing the process, so the partial repair still reports and every
  // streamed sink is closed through the normal path below.
  fm::Deadline deadline;
  options.deadline = &deadline;
  g_repair_deadline.store(&deadline, std::memory_order_release);
  struct sigaction signal_action;
  struct sigaction previous_int;
  struct sigaction previous_term;
  std::memset(&signal_action, 0, sizeof(signal_action));
  signal_action.sa_handler = HandleRepairSignal;
  sigemptyset(&signal_action.sa_mask);
  sigaction(SIGINT, &signal_action, &previous_int);
  sigaction(SIGTERM, &signal_action, &previous_term);

  fm::SimulatedFoundationModel model(loaded.corpus.dataset.schema(),
                                     loaded.style_fn, loaded.scene,
                                     fm::SimulatedFoundationModel::Options());
  fm::SimulatedBackendPool pool;
  fm::FoundationModel* fm_model = &model;
  if (num_backends > 1) {
    fm::SimulatedPoolOptions pool_options;
    pool_options.num_backends = num_backends;
    pool = fm::MakeSimulatedBackendPool(loaded.corpus.dataset.schema(),
                                        loaded.style_fn, loaded.scene,
                                        pool_options);
    fm_model = pool.pool.get();
  }
  const fm::EvaluatorPool evaluators(flags.GetInt("evaluator_seed", 2024));
  core::Chameleon system(fm_model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&loaded.corpus);
  sigaction(SIGINT, &previous_int, nullptr);
  sigaction(SIGTERM, &previous_term, nullptr);
  g_repair_deadline.store(nullptr, std::memory_order_release);
  if (!report.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 report.status().ToString().c_str());
    // Even a failed run finalizes its streamed sinks: the on-disk prefix
    // stays a well-formed JSONL file obsctl can analyze.
    if (!trace_out.empty()) {
      static_cast<void>(observability.tracer.CloseStream());
    }
    if (!journal_out.empty()) {
      static_cast<void>(observability.journal.CloseStream());
    }
    return 1;
  }
  if (report->cancelled) {
    std::printf("interrupted: repair stopped at a round boundary; "
                "%lld plan entr%s parked\n",
                static_cast<long long>(report->faults.parked_entries()),
                report->faults.parked_entries() == 1 ? "y" : "ies");
  }

  std::printf("repaired %zu MUP(s): %lld queries, %lld accepted (%.0f%%), "
              "estimated p=%.2f, cost=$%.2f, resolved=%s\n",
              report->initial_mups.size(),
              static_cast<long long>(report->queries),
              static_cast<long long>(report->accepted),
              100.0 * report->AcceptanceRate(), report->estimated_p,
              report->total_cost, report->fully_resolved ? "yes" : "no");

  if (num_backends > 1) {
    std::printf("backend routing (%s):",
                fm::BackendRouterKindName(options.backend_router));
    for (int b = 0; b < pool.pool->num_backends(); ++b) {
      std::printf(" %s=%lld", pool.pool->profile(b).name.c_str(),
                  static_cast<long long>(pool.pool->routed_queries(b)));
    }
    std::printf("\n");
  }

  if (flags.Has("metrics")) {
    std::printf("%s", observability.registry.ToTable().ToString().c_str());
  }
  if (!metrics_out.empty()) {
    const util::Status written = observability.registry.Write(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    const util::Status closed = observability.tracer.CloseStream();
    if (!closed.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   closed.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  if (!journal_out.empty()) {
    const util::Status closed = observability.journal.CloseStream();
    if (!closed.ok()) {
      std::fprintf(stderr, "journal export failed: %s\n",
                   closed.ToString().c_str());
      return 1;
    }
    std::printf("journal written to %s\n", journal_out.c_str());
  }
  if (!openmetrics_out.empty()) {
    const util::Status written =
        obs::WriteOpenMetrics(observability.registry, openmetrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "openmetrics export failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("openmetrics written to %s\n", openmetrics_out.c_str());
  }
  if (!trace_json_out.empty()) {
    const util::Status written =
        obs::WriteTraceEvents(observability.tracer, trace_json_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace json export failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("trace json written to %s\n", trace_json_out.c_str());
  }

  const std::string out = flags.Get("out", "");
  if (!out.empty()) {
    const util::Status saved = fm::SaveCorpus(loaded.corpus, out);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("repaired corpus written to %s\n", out.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: chameleon_cli <audit|plan|repair> [--flags]\n"
               "  audit  --dataset=feret|utkface --tau=N [--n=N]\n"
               "  plan   --dataset=... --tau=N "
               "[--algorithm=greedy|mingap|random]\n"
               "  repair --dataset=... --tau=N [--strategy=linucb|similar|"
               "random|noguide]\n"
               "         [--mask=accurate|moderate|imprecise] [--alpha=A] "
               "[--nu=V] [--out=DIR]\n"
               "         [--rejection-batch=N] [--batch-size=N] "
               "[--batch-window=MS]\n"
               "         [--backends=N] [--router=greedy|linucb] "
               "[--incremental-coverage]\n"
               "         [--metrics] [--metrics-out=FILE] [--trace-out=FILE] "
               "[--journal-out=FILE]\n"
               "         [--openmetrics-out=FILE] [--trace-json-out=FILE] "
               "[--request-id=ID]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv);
  if (command == "audit") return CmdAudit(flags);
  if (command == "plan") return CmdPlan(flags);
  if (command == "repair") return CmdRepair(flags);
  return Usage();
}
