#!/usr/bin/env bash
# CI driver: builds and runs the tier-1 test suite under each sanitizer
# configuration, plus the chameleon-lint static-analysis gate. Usage:
#
#   tools/ci.sh            # all jobs
#   tools/ci.sh lint       # chameleon-lint over src/, tests/, tools/
#   tools/ci.sh asan       # Debug + AddressSanitizer + UBSan only
#   tools/ci.sh tsan       # RelWithDebInfo + ThreadSanitizer only
#   tools/ci.sh faults     # fault-injection/resilience suite under ASan/UBSan
#   tools/ci.sh daemon     # chameleond chaos harness under ASan/UBSan + TSan
#   tools/ci.sh release    # plain Release build + tests only
#   tools/ci.sh bench-smoke  # micro benches in smoke mode + obsctl gate
#
# Each job uses its own build directory (build-ci-<job>) so sanitizer
# runtimes never mix and incremental rebuilds stay valid. All jobs build
# with CHAMELEON_WERROR=ON: warnings are errors in CI.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:-all}"
PARALLEL="$(nproc 2>/dev/null || echo 2)"

run_job() {
  local name="$1" build_type="$2" flags="$3"
  local dir="build-ci-${name}"
  echo "==== [${name}] configure (${build_type}; flags: ${flags:-none}) ===="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DCHAMELEON_WERROR=ON \
    -DCMAKE_CXX_FLAGS="${flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${flags}" >/dev/null
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j "${PARALLEL}"
  echo "==== [${name}] ctest ===="
  ctest --test-dir "${dir}" --output-on-failure
  if [[ "${name}" == "tsan" ]]; then
    # Focused second pass over the suites that exercise cross-thread
    # machinery hardest: the fault-injection stack and the observability
    # layer's concurrent counters/histograms and instrumented pipeline
    # runs (labelled `resilience` and `obs` in tests/CMakeLists.txt).
    echo "==== [${name}] ctest -L 'resilience|obs' (focused rerun) ===="
    ctest --test-dir "${dir}" --output-on-failure -L 'resilience|obs'
  fi
}

# Fault-injection gate: the resilience suite (flaky/resilient decorators,
# graceful pipeline degradation, corpus-corruption handling) under
# ASan/UBSan, where a mis-handled fault path shows up as a real error
# rather than flaky behaviour. The TSan job above covers the atomic query
# counter via the same suite at full breadth.
run_faults() {
  local dir="build-ci-faults"
  local flags="-fsanitize=address,undefined -fno-omit-frame-pointer"
  echo "==== [faults] configure (Debug + ASan/UBSan) ===="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCHAMELEON_WERROR=ON \
    -DCMAKE_CXX_FLAGS="${flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${flags}" >/dev/null
  echo "==== [faults] build resilience + fm tests ===="
  cmake --build "${dir}" -j "${PARALLEL}" --target resilience_test fm_test
  echo "==== [faults] ctest (resilience_test, fm_test) ===="
  ctest --test-dir "${dir}" --output-on-failure -R '^(resilience_test|fm_test)$'
}

# Serving-layer gate: the chameleond chaos harness (frame corruption,
# overload, cancellation, crash/resume, FlakyTransport) under both
# sanitizer families. ASan/UBSan catches lifetime bugs on the drain and
# disconnect paths; TSan covers the admission bookkeeping, the shared
# worker pool, and the per-request isolation claims.
run_daemon() {
  local dir flags config
  for config in asan tsan; do
    dir="build-ci-daemon-${config}"
    if [[ "${config}" == "asan" ]]; then
      flags="-fsanitize=address,undefined -fno-omit-frame-pointer"
      echo "==== [daemon] configure (Debug + ASan/UBSan) ===="
      cmake -B "${dir}" -S . \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCHAMELEON_WERROR=ON \
        -DCMAKE_CXX_FLAGS="${flags}" \
        -DCMAKE_EXE_LINKER_FLAGS="${flags}" >/dev/null
    else
      flags="-fsanitize=thread -fno-omit-frame-pointer"
      echo "==== [daemon] configure (RelWithDebInfo + TSan) ===="
      cmake -B "${dir}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCHAMELEON_WERROR=ON \
        -DCMAKE_CXX_FLAGS="${flags}" \
        -DCMAKE_EXE_LINKER_FLAGS="${flags}" >/dev/null
    fi
    echo "==== [daemon] build daemon_test (${config}) ===="
    cmake --build "${dir}" -j "${PARALLEL}" --target daemon_test
    echo "==== [daemon] ctest -L daemon (${config}) ===="
    ctest --test-dir "${dir}" --output-on-failure -L daemon
    run_daemon_scrape "${dir}" "${config}"
  done
}

# Emits one length-prefixed frame (4-byte little-endian length, then the
# payload) on stdout. Payloads here are well under 65536 bytes, so the
# two high length bytes are always zero.
frame() {
  local payload="$1"
  local len=${#payload}
  printf "$(printf '\\%03o\\%03o\\000\\000' $((len % 256)) $((len / 256)))%s" \
      "${payload}"
}

# Live telemetry scrape (DESIGN.md §15): start a real chameleond with
# --telemetry, drive two faulty repairs through the frame protocol, send
# a `stats` frame while they are in flight, and gate on the snapshot:
# the OpenMetrics exposition must pass `obsctl validate` and the daemon
# journal must pass `obsctl aggregate` (per-request contracts hold).
run_daemon_scrape() {
  local dir="$1" config="$2"
  local scrape="${dir}/daemon-scrape"
  echo "==== [daemon] build chameleond + obsctl (${config}) ===="
  cmake --build "${dir}" -j "${PARALLEL}" --target chameleond obsctl
  rm -rf "${scrape}"
  mkdir -p "${scrape}"
  mkfifo "${scrape}/in.fifo"
  echo "==== [daemon] live stats scrape (${config}) ===="
  "${dir}/tools/chameleond/chameleond" \
      --telemetry --threads=2 \
      --journal="${scrape}/daemon.jsonl" \
      --stats-out="${scrape}/stats.om" \
      < "${scrape}/in.fifo" > "${scrape}/out.bin" 2> "${scrape}/err.txt" &
  local daemon_pid=$!
  {
    frame '{"type":"repair","id":"ci-scrape-a","client":"ci","dataset":"micro","max_queries":24,"faults":{"transient_rate":0.2,"rate_limit_rate":0.1,"seed":7}}'
    frame '{"type":"repair","id":"ci-scrape-b","client":"ci","dataset":"micro","max_queries":24,"seed":17,"faults":{"transient_rate":0.2,"deadline_rate":0.1,"seed":11}}'
    # The reader thread handles `stats` inline while the two repairs run
    # on the worker pool, so this scrape observes mid-run telemetry.
    frame '{"type":"stats"}'
    frame '{"type":"shutdown"}'
  } > "${scrape}/in.fifo"
  if ! wait "${daemon_pid}"; then
    echo "==== [daemon] FAILED: chameleond exited nonzero (${config}) ====" >&2
    cat "${scrape}/err.txt" >&2
    return 1
  fi
  "${dir}/tools/obsctl/obsctl" validate "${scrape}/stats.om"
  "${dir}/tools/obsctl/obsctl" aggregate "--journal=${scrape}/daemon.jsonl"
}

# Builds only the linter and runs it over the tree (all rules, the
# committed baseline, full parallelism); exits nonzero on any finding.
# Emits the SARIF log as ${dir}/lint.sarif for CI annotation upload.
# Cheaper than a full test run, so it leads the `all` sequence.
run_lint() {
  local dir="build-ci-lint"
  echo "==== [lint] configure (Release) ===="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCHAMELEON_WERROR=ON >/dev/null
  echo "==== [lint] build chameleon-lint ===="
  cmake --build "${dir}" -j "${PARALLEL}" --target chameleon-lint
  echo "==== [lint] chameleon-lint --jobs=${PARALLEL} src tests tools/analyzer tools/obsctl ===="
  "${dir}/tools/analyzer/chameleon-lint" --root=. \
    "--jobs=${PARALLEL}" \
    "--sarif=${dir}/lint.sarif" \
    --baseline=tools/analyzer/lint-baseline.txt \
    src tests tools/analyzer tools/obsctl tools/chameleond
  echo "==== [lint] sarif artifact: ${dir}/lint.sarif ===="
}

# Continuous-benchmark gate: runs the smoke micro-bench set with the
# JSON reporter, schema-validates each report with `obsctl validate`,
# then `obsctl diff`s against the committed baselines in bench/baselines/
# and fails on any regression beyond the threshold. A flagged regression
# must reproduce on one fresh re-run before it fails the gate — the
# reported ns/op is already the min over repetitions, but a sustained
# load spike can still starve every repetition of a short case once.
#
#   BENCH_SMOKE_THRESHOLD    relative slowdown gate (default 0.25 = 25%)
#   BENCH_SMOKE_REBASELINE=1 overwrite the committed baselines instead of
#                            diffing (run on the reference machine, then
#                            commit the refreshed bench/baselines/)
run_bench_smoke() {
  local dir="build-ci-bench"
  local threshold="${BENCH_SMOKE_THRESHOLD:-0.25}"
  local smoke_benches=(bench_micro_greedy bench_micro_linucb
                       bench_micro_ocsvm bench_obs bench_batching
                       bench_daemon bench_incremental_coverage)
  echo "==== [bench-smoke] configure (Release) ===="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCHAMELEON_WERROR=ON >/dev/null
  echo "==== [bench-smoke] build obsctl + smoke benches ===="
  cmake --build "${dir}" -j "${PARALLEL}" --target obsctl "${smoke_benches[@]}"
  CHAMELEON_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  export CHAMELEON_GIT_SHA
  mkdir -p "${dir}/bench-json"
  local bench json baseline failed=0
  for bench in "${smoke_benches[@]}"; do
    json="${dir}/bench-json/BENCH_${bench}.json"
    baseline="bench/baselines/BENCH_${bench}.json"
    echo "==== [bench-smoke] ${bench} --smoke ===="
    "${dir}/bench/${bench}" --smoke "--json=${json}" >/dev/null
    "${dir}/tools/obsctl/obsctl" validate "${json}"
    if [[ "${BENCH_SMOKE_REBASELINE:-0}" == "1" ]]; then
      cp "${json}" "${baseline}"
      echo "rebaselined ${baseline}"
    elif [[ -f "${baseline}" ]]; then
      echo "==== [bench-smoke] obsctl diff ${baseline} (threshold ${threshold}) ===="
      if ! "${dir}/tools/obsctl/obsctl" diff "${baseline}" "${json}" \
          "--threshold=${threshold}"; then
        echo "==== [bench-smoke] ${bench} regressed; re-running to confirm ===="
        "${dir}/bench/${bench}" --smoke "--json=${json}" >/dev/null
        "${dir}/tools/obsctl/obsctl" validate "${json}"
        "${dir}/tools/obsctl/obsctl" diff "${baseline}" "${json}" \
          "--threshold=${threshold}" || failed=1
      fi
    else
      echo "no baseline ${baseline}; run with BENCH_SMOKE_REBASELINE=1" >&2
      failed=1
    fi
  done
  if [[ "${failed}" != "0" ]]; then
    echo "==== [bench-smoke] FAILED: regressions beyond ${threshold} (or missing baselines) ====" >&2
    return 1
  fi
}

case "${JOBS}" in
  lint)
    run_lint
    ;;
  release)
    run_job release Release ""
    ;;
  asan)
    run_job asan Debug "-fsanitize=address,undefined -fno-omit-frame-pointer"
    ;;
  tsan)
    # TSan is incompatible with ASan; RelWithDebInfo keeps the threaded
    # tests fast enough while preserving stacks.
    run_job tsan RelWithDebInfo "-fsanitize=thread -fno-omit-frame-pointer"
    ;;
  faults)
    run_faults
    ;;
  daemon)
    run_daemon
    ;;
  bench-smoke)
    run_bench_smoke
    ;;
  all)
    run_lint
    run_job release Release ""
    run_job asan Debug "-fsanitize=address,undefined -fno-omit-frame-pointer"
    run_job tsan RelWithDebInfo "-fsanitize=thread -fno-omit-frame-pointer"
    run_faults
    run_daemon
    run_bench_smoke
    ;;
  *)
    echo "unknown job '${JOBS}' (expected: all | lint | release | asan | tsan | faults | daemon | bench-smoke)" >&2
    exit 2
    ;;
esac

echo "==== CI: all requested jobs passed ===="
