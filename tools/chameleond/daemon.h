#ifndef CHAMELEON_TOOLS_CHAMELEOND_DAEMON_H_
#define CHAMELEON_TOOLS_CHAMELEOND_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/coverage/incremental_mup.h"
#include "src/embedding/embedder.h"
#include "src/fm/corpus.h"
#include "src/fm/deadline.h"
#include "src/obs/aggregate.h"
#include "src/obs/journal.h"
#include "src/obs/virtual_clock.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"
#include "tools/chameleond/protocol.h"
#include "tools/chameleond/transport.h"

namespace chameleon::daemon {

/// The `micro` dataset behind DatasetKind::kMicro: a deliberately small
/// FERET-schema corpus (Middle Eastern absent entirely, Asian/Hispanic
/// thin) whose minimum-level repair runs in a fraction of a second.
/// Exposed so tests and benches can run the identical repair directly
/// against core::Chameleon and compare digests with daemon runs.
[[nodiscard]] util::Result<fm::Corpus> MakeMicroCorpus(
    const embedding::Embedder* embedder);

struct DaemonOptions {
  /// Request-journal path (streamed JSONL, append+flush per event). Empty
  /// keeps the journal in memory only — no crash tolerance.
  std::string journal_path;
  /// Admission bound: queued + running requests. At the bound, new repair
  /// frames are rejected with kResourceExhausted (fast refusal instead of
  /// latency collapse).
  int max_queue = 32;
  /// Per-client in-flight cap (keyed by the request's `client` field), so
  /// one chatty client cannot monopolize the queue.
  int max_inflight_per_client = 8;
  /// Wall milliseconds Drain waits for in-flight requests before
  /// cancelling the stragglers (which then park at their next round
  /// boundary and still deliver partial reports).
  double drain_wait_ms = 5000.0;
  /// Worker threads executing repairs; 0 = hardware concurrency.
  int num_threads = 0;
  /// Request-scoped telemetry (DESIGN.md §15): every accepted request
  /// gets its own obs::Observability tagged with the request id, its
  /// journal lines and spans are teed into the daemon journal as
  /// `req.event`/`req.span` wrapper events, and its registry is folded
  /// into the daemon-global Aggregator on completion. Off by default —
  /// the serving hot path then pays nothing beyond the SLO counters.
  bool telemetry = false;
  /// When non-empty, every `stats` frame (and the final drain) also
  /// writes the OpenMetrics snapshot to this path, so operators can
  /// scrape a file instead of speaking the frame protocol.
  std::string stats_out;
};

/// Counter snapshot; `active` must be zero after Serve returns (the
/// chaos harness's slot-leak check).
struct DaemonStats {
  int64_t frames = 0;            ///< complete frames handled
  int64_t accepted = 0;          ///< repair requests admitted
  int64_t completed = 0;         ///< repairs finished (any status)
  int64_t cancelled = 0;         ///< repairs that ended cancelled
  int64_t rejected_overload = 0; ///< kResourceExhausted refusals
  int64_t rejected_duplicate = 0;
  int64_t protocol_errors = 0;   ///< malformed/oversized/truncated frames
  int64_t resumed = 0;           ///< journal-recovered requests re-parked
  int64_t active = 0;            ///< currently queued + running
  int64_t running = 0;           ///< currently executing (subset of active)
  int64_t deadline_expired = 0;  ///< completions that hit their deadline
  /// Incremental repairs that cloned a cached warm MUP index (hit) vs.
  /// built it from the base corpus (miss). The cache is in-memory only,
  /// so a resumed daemon always starts with misses — crash recovery can
  /// never reuse a stale frontier.
  int64_t index_warm_hits = 0;
  int64_t index_warm_misses = 0;
};

/// The chameleond server: accepts length-prefixed JSONL frames over a
/// Transport, multiplexes repair requests onto a shared ThreadPool with
/// admission control, per-request deadlines/cancellation, a streamed
/// crash-tolerant request journal, and graceful drain. One Daemon serves
/// one connection (stdin/stdout in production); see DESIGN.md §13.
class Daemon {
 public:
  Daemon(Transport* transport, const DaemonOptions& options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Replays an existing request journal at `journal_path`: every request
  /// accepted but never finished is re-parked (announced via a `resumed`
  /// frame when Serve starts) and its id is blocked against reuse. Call
  /// before Serve; the journal is then compacted — the new stream starts
  /// fresh with `req.resumed` events carrying the recovered state.
  [[nodiscard]] util::Status Resume();

  /// Blocking serve loop: reads frames until end of stream, a `shutdown`
  /// frame, a fatal transport error, or RequestShutdown; then drains
  /// in-flight requests (up to drain_wait_ms, cancelling stragglers),
  /// finalizes the journal, and returns. Ok means a clean drain —
  /// regardless of how the loop was stopped.
  [[nodiscard]] util::Status Serve();

  /// Stops admissions and wakes the serve loop so it drains and returns.
  /// Callable from any thread. From a signal handler this is only safe
  /// over a Transport whose WakeReader is async-signal-safe (FdTransport:
  /// a no-op — the signal's EINTR already interrupts the blocked read).
  void RequestShutdown();

  DaemonStats stats() const;

 private:
  struct ResumedRequest {
    std::string id;
    std::string state;
  };

  /// Dispatches one complete frame body. Returns non-OK only when the
  /// transport write side is dead (the serve loop then drains).
  [[nodiscard]] util::Status HandleFrame(const std::string& payload);

  /// Admission control: duplicate-id, queue-bound, and per-client checks;
  /// on success journals `req.accepted` and hands the request to the
  /// pool. kResourceExhausted signals overload to the client.
  [[nodiscard]] util::Status Submit(const RepairRequestSpec& spec);

  /// Marks the request's Deadline cancelled; the repair parks at its next
  /// round boundary and reports a partial result.
  [[nodiscard]] util::Status Cancel(const std::string& id);

  /// Stops admissions and waits for in-flight requests: up to
  /// drain_wait_ms for a voluntary finish, then cancels the stragglers
  /// and waits for them to park.
  [[nodiscard]] util::Status Drain();

  /// Worker body: builds the per-request model stack (its own simulator,
  /// fault injector, resilience decorator, and Deadline — full isolation
  /// from every other request), runs the repair, journals the outcome,
  /// and sends the report frame.
  void RunRequest(const RepairRequestSpec& spec,
                  const std::shared_ptr<fm::Deadline>& deadline);

  /// Serialized frame write; after the first failure every send fails
  /// fast (the peer is gone, but draining must still finish).
  [[nodiscard]] util::Status SendFrame(const std::string& payload);

  /// Renders the aggregator's current total + windowed views as one
  /// OpenMetrics document (what a `stats` frame returns).
  std::string ScrapeOpenMetrics();

  /// Assembles the live serving summary a `statusz` frame returns.
  StatuszInfo CollectStatusz();

  /// Writes the OpenMetrics snapshot to options_.stats_out (no-op when
  /// unset); failures are journaled, never fatal.
  void WriteStatsSnapshot();

  Transport* transport_;
  DaemonOptions options_;

  obs::VirtualClock clock_;
  obs::Journal journal_;
  /// Daemon-global telemetry rollup (DESIGN.md §15). Self-synchronized;
  /// when both are needed the lock order is state_mutex_ before the
  /// aggregator's internal mutex (CollectStatusz), never the reverse.
  obs::Aggregator aggregator_;

  std::atomic<bool> shutdown_{false};

  mutable std::mutex state_mutex_;
  std::condition_variable drain_cv_;
  DaemonStats stats_ CHAMELEON_GUARDED_BY(state_mutex_);
  bool draining_ CHAMELEON_GUARDED_BY(state_mutex_) = false;
  std::set<std::string> seen_ids_ CHAMELEON_GUARDED_BY(state_mutex_);
  std::map<std::string, int> inflight_by_client_
      CHAMELEON_GUARDED_BY(state_mutex_);
  std::map<std::string, std::shared_ptr<fm::Deadline>> active_
      CHAMELEON_GUARDED_BY(state_mutex_);

  std::mutex write_mutex_;
  bool write_failed_ CHAMELEON_GUARDED_BY(write_mutex_) = false;

  /// Warm incremental MUP indexes, one per (dataset, tau) — see
  /// DESIGN.md §14. Base corpora are rebuilt per request from fixed
  /// seeds, so an entry stays valid for every request with the same key;
  /// each request works on its own clone and never mutates the cached
  /// copy. Guarded separately from state_mutex_ so an index clone never
  /// stalls admission control.
  std::mutex index_mutex_;
  std::map<std::string, coverage::IncrementalMupIndex> warm_indexes_
      CHAMELEON_GUARDED_BY(index_mutex_);

  std::vector<ResumedRequest> resumed_;

  /// Declared last: its destructor runs queued work to completion before
  /// any other member (journal, maps) is torn down.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace chameleon::daemon

#endif  // CHAMELEON_TOOLS_CHAMELEOND_DAEMON_H_
