// chameleond: the Chameleon repair daemon. Speaks the length-prefixed
// JSONL frame protocol on stdin/stdout; see DESIGN.md §13 and README
// "Running as a service".
//
//   chameleond --journal=daemon.jsonl --resume --max-queue=32
//              --max-inflight=8 --threads=4 --drain-wait-ms=5000
//
// SIGINT/SIGTERM trigger a graceful drain: admissions close, in-flight
// repairs finish (or are cancelled at the drain deadline and report
// partial results), journals are finalized, and the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/chameleond/daemon.h"
#include "tools/chameleond/transport.h"

namespace {

chameleon::daemon::Daemon* g_daemon = nullptr;

// Async-signal-safe: an atomic store plus FdTransport::WakeReader (a
// no-op — the handler being installed without SA_RESTART makes the
// blocked read return EINTR, which the serve loop maps to a shutdown
// check).
void HandleSignal(int /*signum*/) {
  if (g_daemon != nullptr) g_daemon->RequestShutdown();
}

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atoi(arg + len + 1);
  return true;
}

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atof(arg + len + 1);
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: chameleond [--journal=PATH] [--resume] [--max-queue=N]\n"
      "                  [--max-inflight=N] [--threads=N]\n"
      "                  [--drain-wait-ms=MS] [--telemetry]\n"
      "                  [--stats-out=PATH]\n"
      "Serves the chameleond frame protocol on stdin/stdout.\n"
      "--telemetry gives every request its own request-scoped journal/\n"
      "trace/metrics (teed into the daemon journal) and folds finished\n"
      "requests into the live `stats` aggregate; --stats-out mirrors\n"
      "each stats scrape (and the final drain) to a file.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  chameleon::daemon::DaemonOptions options;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--journal=", 10) == 0) {
      options.journal_path = arg + 10;
    } else if (std::strncmp(arg, "--stats-out=", 12) == 0) {
      options.stats_out = arg + 12;
    } else if (std::strcmp(arg, "--telemetry") == 0) {
      options.telemetry = true;
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else if (ParseIntFlag(arg, "--max-queue", &options.max_queue) ||
               ParseIntFlag(arg, "--max-inflight",
                            &options.max_inflight_per_client) ||
               ParseIntFlag(arg, "--threads", &options.num_threads) ||
               ParseDoubleFlag(arg, "--drain-wait-ms",
                               &options.drain_wait_ms)) {
      continue;
    } else {
      std::fprintf(stderr, "chameleond: unknown flag '%s'\n", arg);
      return Usage();
    }
  }
  if (options.max_queue < 1 || options.max_inflight_per_client < 1 ||
      options.drain_wait_ms < 0.0) {
    std::fprintf(stderr, "chameleond: invalid option values\n");
    return Usage();
  }

  chameleon::daemon::FdTransport transport(/*read_fd=*/0, /*write_fd=*/1);
  chameleon::daemon::Daemon daemon(&transport, options);
  g_daemon = &daemon;

  // No SA_RESTART: the signal must interrupt the blocked read so the
  // serve loop observes the shutdown flag and drains.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  if (resume) {
    chameleon::util::Status resumed = daemon.Resume();
    if (!resumed.ok()) {
      std::fprintf(stderr, "chameleond: resume failed: %s\n",
                   resumed.ToString().c_str());
      return 1;
    }
  }

  chameleon::util::Status served = daemon.Serve();
  g_daemon = nullptr;
  if (!served.ok()) {
    std::fprintf(stderr, "chameleond: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
