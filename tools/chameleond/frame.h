#ifndef CHAMELEON_TOOLS_CHAMELEOND_FRAME_H_
#define CHAMELEON_TOOLS_CHAMELEOND_FRAME_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/status.h"
#include "tools/chameleond/transport.h"

namespace chameleon::daemon {

/// Wire format: a 4-byte little-endian unsigned payload length followed
/// by exactly that many payload bytes (one JSON document per frame — the
/// JSONL frame protocol from DESIGN.md §13).
inline constexpr uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB
/// An oversized frame is resynchronized by discarding its declared body,
/// up to this bound. Declared lengths beyond it are treated as stream
/// garbage (a non-protocol peer): unrecoverable.
inline constexpr uint32_t kMaxDiscardBytes = 64u << 20;  // 64 MiB

struct FrameReadResult {
  enum class Kind {
    kFrame,        ///< `payload` holds one complete frame body.
    kEof,          ///< Clean end of stream at a frame boundary.
    kInterrupted,  ///< Read woken for shutdown (Transport kUnavailable).
    kTruncated,    ///< Stream ended mid-frame: a torn write / hard kill.
    kOversized,    ///< Declared length > kMaxFramePayload; body was
                   ///< discarded and the stream is resynchronized at the
                   ///< next frame. `declared_size` holds the length.
    kError,        ///< Hard transport failure or unrecoverable garbage;
                   ///< `status` explains. The connection is dead.
  };

  Kind kind = Kind::kError;
  std::string payload;
  uint32_t declared_size = 0;
  util::Status status = util::Status::Ok();
};

/// Reads one frame. `should_stop` (optional) is consulted whenever the
/// blocking read is interrupted (Transport kUnavailable): true stops the
/// read and returns kInterrupted, false retries without losing partially
/// read bytes. With no predicate, any interruption returns kInterrupted.
FrameReadResult ReadFrame(Transport* transport,
                          const std::function<bool()>& should_stop = nullptr);

/// Writes one frame (length prefix + payload) as a single transport
/// write, so a concurrent writer under its own lock can never interleave
/// a torn prefix. Payloads beyond kMaxFramePayload are rejected.
[[nodiscard]] util::Status WriteFrame(Transport* transport,
                                      const std::string& payload);

}  // namespace chameleon::daemon

#endif  // CHAMELEON_TOOLS_CHAMELEOND_FRAME_H_
