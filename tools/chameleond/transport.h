#ifndef CHAMELEON_TOOLS_CHAMELEOND_TRANSPORT_H_
#define CHAMELEON_TOOLS_CHAMELEOND_TRANSPORT_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace chameleon::daemon {

/// Byte-stream transport under the frame codec (frame.h). The daemon is
/// transport-agnostic: production runs over a file-descriptor pair
/// (stdin/stdout), tests and benches over an in-memory duplex pipe, and
/// the chaos harness wraps either in a fault injector.
///
/// Read contract:
///   Ok(n > 0)      — n bytes were read into `out`.
///   Ok(0)          — clean end of stream (peer closed).
///   kUnavailable   — the blocking read was interrupted (a signal, or
///                    WakeReader); no bytes were consumed. The caller
///                    checks its shutdown flag and either retries or
///                    stops.
///   anything else  — hard transport failure; the connection is dead.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking read of up to `max` bytes.
  [[nodiscard]] virtual util::Result<size_t> Read(char* out, size_t max) = 0;

  /// Writes all `size` bytes (short writes are retried internally).
  [[nodiscard]] virtual util::Status Write(const char* data, size_t size) = 0;

  /// Wakes a reader blocked in Read so it can observe a shutdown flag;
  /// the woken Read returns kUnavailable. The default is a no-op:
  /// FdTransport installs its signal handlers without SA_RESTART, so the
  /// signal itself interrupts the read with EINTR.
  virtual void WakeReader() {}

  /// Closes the write direction: the peer's Read drains buffered bytes
  /// and then sees a clean end of stream. No-op by default.
  virtual void Close() {}
};

/// POSIX file-descriptor transport (stdin/stdout in production). Does not
/// own the descriptors. EINTR on read surfaces as kUnavailable (see the
/// Read contract); EINTR on write is retried internally.
class FdTransport : public Transport {
 public:
  FdTransport(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}

  [[nodiscard]] util::Result<size_t> Read(char* out, size_t max) override;
  [[nodiscard]] util::Status Write(const char* data, size_t size) override;

 private:
  int read_fd_;
  int write_fd_;
};

/// In-memory duplex pipe: two Transport endpoints (client and server)
/// over a pair of buffered byte conduits, for tests and benches. Reads
/// block on a condition variable until data, close, or WakeReader.
class PipePair {
 public:
  PipePair();
  ~PipePair();

  /// Endpoints are owned by the pair and valid for its lifetime.
  Transport* client();
  Transport* server();

 private:
  struct Conduit;
  class Endpoint;

  std::shared_ptr<Conduit> client_to_server_;
  std::shared_ptr<Conduit> server_to_client_;
  std::unique_ptr<Endpoint> client_;
  std::unique_ptr<Endpoint> server_;
};

}  // namespace chameleon::daemon

#endif  // CHAMELEON_TOOLS_CHAMELEOND_TRANSPORT_H_
