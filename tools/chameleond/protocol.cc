#include "tools/chameleond/protocol.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/obs/journal.h"
#include "tools/obsctl/json.h"

namespace chameleon::daemon {
namespace {

/// Shortest round-trip rendering of a double (JSON number).
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string Quoted(const std::string& text) {
  // Built by append: GCC 12's -Wrestrict misfires on the
  // `"literal" + std::string&&` form once JsonEscape gets inlined.
  std::string out = "\"";
  out += obs::JsonEscape(text);
  out += "\"";
  return out;
}

}  // namespace

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMicro:
      return "micro";
    case DatasetKind::kFeret:
      return "feret";
    case DatasetKind::kUtkFace:
      return "utkface";
  }
  return "unknown";
}

bool IsValidUtf8(const std::string& text) {
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const unsigned char byte = static_cast<unsigned char>(text[i]);
    size_t extra;
    unsigned cp_min;
    if (byte < 0x80) {
      ++i;
      continue;
    } else if ((byte & 0xE0) == 0xC0) {
      extra = 1;
      cp_min = 0x80;
    } else if ((byte & 0xF0) == 0xE0) {
      extra = 2;
      cp_min = 0x800;
    } else if ((byte & 0xF8) == 0xF0) {
      extra = 3;
      cp_min = 0x10000;
    } else {
      return false;  // continuation or invalid lead byte
    }
    if (i + extra >= n) return false;
    unsigned cp = byte & (0x3F >> extra);
    for (size_t k = 1; k <= extra; ++k) {
      const unsigned char cont = static_cast<unsigned char>(text[i + k]);
      if ((cont & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cont & 0x3F);
    }
    if (cp < cp_min) return false;                  // overlong encoding
    if (cp > 0x10FFFF) return false;                // beyond Unicode
    if (cp >= 0xD800 && cp <= 0xDFFF) return false; // surrogate half
    i += extra + 1;
  }
  return true;
}

util::Result<ParsedFrame> ParseRequestFrame(const std::string& payload) {
  if (!IsValidUtf8(payload)) {
    return util::Status::InvalidArgument("frame body is not valid UTF-8");
  }
  auto json = obsctl::ParseJson(payload);
  if (!json.ok()) {
    return util::Status::InvalidArgument("frame body is not valid JSON: " +
                                         json.status().message());
  }
  if (!json->is_object()) {
    return util::Status::InvalidArgument("frame body must be a JSON object");
  }
  const std::string type = json->StringOr("type", "");
  ParsedFrame frame;

  if (type == "ping") {
    frame.kind = FrameKind::kPing;
    return frame;
  }
  if (type == "shutdown") {
    frame.kind = FrameKind::kShutdown;
    return frame;
  }
  if (type == "stats") {
    frame.kind = FrameKind::kStats;
    return frame;
  }
  if (type == "statusz") {
    frame.kind = FrameKind::kStatusz;
    return frame;
  }
  if (type == "cancel") {
    frame.kind = FrameKind::kCancel;
    frame.id = json->StringOr("id", "");
    if (frame.id.empty()) {
      return util::Status::InvalidArgument("cancel frame requires an id");
    }
    return frame;
  }
  if (type != "repair") {
    return util::Status::InvalidArgument(
        type.empty() ? "frame is missing the type field"
                     : "unknown frame type '" + type + "'");
  }

  frame.kind = FrameKind::kRepair;
  RepairRequestSpec& spec = frame.spec;
  spec.id = json->StringOr("id", "");
  if (spec.id.empty()) {
    return util::Status::InvalidArgument("repair frame requires an id");
  }
  frame.id = spec.id;
  spec.client = json->StringOr("client", spec.client);

  const std::string dataset = json->StringOr("dataset", "micro");
  if (dataset == "micro") {
    spec.dataset = DatasetKind::kMicro;
  } else if (dataset == "feret") {
    spec.dataset = DatasetKind::kFeret;
  } else if (dataset == "utkface") {
    spec.dataset = DatasetKind::kUtkFace;
  } else {
    return util::Status::InvalidArgument("unknown dataset '" + dataset +
                                         "' (expected micro|feret|utkface)");
  }

  spec.tau = json->IntOr("tau", spec.tau);
  spec.seed = static_cast<uint64_t>(
      json->IntOr("seed", static_cast<int64_t>(spec.seed)));
  spec.max_queries = json->IntOr("max_queries", spec.max_queries);
  spec.rejection_batch = static_cast<int>(
      json->IntOr("rejection_batch", spec.rejection_batch));
  spec.num_threads = static_cast<int>(
      json->IntOr("num_threads", spec.num_threads));
  spec.deadline_ms = json->NumberOr("deadline_ms", spec.deadline_ms);
  spec.incremental = json->BoolOr("incremental", spec.incremental);
  if (spec.tau <= 0) {
    return util::Status::InvalidArgument("tau must be positive");
  }
  if (spec.max_queries <= 0) {
    return util::Status::InvalidArgument("max_queries must be positive");
  }
  if (spec.rejection_batch < 1) {
    return util::Status::InvalidArgument("rejection_batch must be >= 1");
  }
  if (spec.num_threads < 0) {
    return util::Status::InvalidArgument("num_threads must be >= 0");
  }
  if (spec.deadline_ms < 0.0) {
    return util::Status::InvalidArgument("deadline_ms must be >= 0");
  }

  if (const obsctl::JsonValue* faults = json->Find("faults")) {
    if (!faults->is_object()) {
      return util::Status::InvalidArgument("faults must be an object");
    }
    spec.has_faults = true;
    fm::FlakyOptions& f = spec.faults;
    f.seed = static_cast<uint64_t>(
        faults->IntOr("seed", static_cast<int64_t>(f.seed)));
    f.transient_rate = faults->NumberOr("transient_rate", f.transient_rate);
    f.rate_limit_rate = faults->NumberOr("rate_limit_rate", f.rate_limit_rate);
    f.deadline_rate = faults->NumberOr("deadline_rate", f.deadline_rate);
    f.malformed_rate = faults->NumberOr("malformed_rate", f.malformed_rate);
    f.fail_from_query = faults->IntOr("fail_from_query", f.fail_from_query);
    f.outage_start = faults->IntOr("outage_start", f.outage_start);
    f.outage_length = faults->IntOr("outage_length", f.outage_length);
  }

  if (const obsctl::JsonValue* res = json->Find("resilience")) {
    if (!res->is_object()) {
      return util::Status::InvalidArgument("resilience must be an object");
    }
    fm::ResilienceOptions& r = spec.resilience;
    r.seed = static_cast<uint64_t>(
        res->IntOr("seed", static_cast<int64_t>(r.seed)));
    r.max_attempts = static_cast<int>(
        res->IntOr("max_attempts", r.max_attempts));
    r.backoff_base_ms = res->NumberOr("backoff_base_ms", r.backoff_base_ms);
    r.backoff_max_ms = res->NumberOr("backoff_max_ms", r.backoff_max_ms);
    r.attempt_cost_ms = res->NumberOr("attempt_cost_ms", r.attempt_cost_ms);
    r.breaker_failure_threshold = static_cast<int>(res->IntOr(
        "breaker_failure_threshold", r.breaker_failure_threshold));
    r.breaker_probe_interval = static_cast<int>(
        res->IntOr("breaker_probe_interval", r.breaker_probe_interval));
  }

  return frame;
}

std::string RenderError(const std::string& id, util::StatusCode code,
                        const std::string& message) {
  std::string out = "{\"type\":\"error\"";
  if (!id.empty()) out += ",\"id\":" + Quoted(id);
  out += ",\"code\":" + Quoted(util::StatusCodeName(code));
  out += ",\"message\":" + Quoted(message);
  out += "}";
  return out;
}

std::string RenderAck(const std::string& id) {
  return "{\"type\":\"ack\",\"id\":" + Quoted(id) + "}";
}

std::string RenderPong() { return "{\"type\":\"pong\"}"; }

const char* ReportStatusLabel(const core::RepairReport& report) {
  if (report.cancelled) return "cancelled";
  if (report.deadline_expired) return "deadline";
  if (report.faults.parked_entries() > 0) return "parked";
  return "ok";
}

std::string RenderReport(const std::string& id,
                         const core::RepairReport& report, double virtual_ms) {
  std::string out = "{\"type\":\"report\",\"id\":" + Quoted(id);
  out += ",\"status\":" + Quoted(ReportStatusLabel(report));
  out += ",\"accepted\":" + std::to_string(report.accepted);
  out += ",\"queries\":" + std::to_string(report.queries);
  out += ",\"fully_resolved\":";
  out += report.fully_resolved ? "true" : "false";
  out += ",\"parked_entries\":" +
         std::to_string(report.faults.parked_entries());
  out += ",\"faults_masked\":" +
         std::to_string(report.faults.transport.faults_masked);
  out += ",\"virtual_ms\":" + FormatDouble(virtual_ms);
  out += ",\"records_digest\":" + Quoted(ReportDigest(report));
  out += "}";
  return out;
}

std::string RenderResumed(const std::string& id, const std::string& state) {
  return "{\"type\":\"resumed\",\"id\":" + Quoted(id) +
         ",\"state\":" + Quoted(state) + "}";
}

std::string RenderStats(const std::string& openmetrics_body) {
  return "{\"type\":\"stats\",\"format\":\"openmetrics\",\"body\":" +
         Quoted(openmetrics_body) + "}";
}

std::string RenderStatusz(const StatuszInfo& info) {
  std::string out = "{\"type\":\"statusz\"";
  out += ",\"uptime_virtual_ms\":" + FormatDouble(info.uptime_virtual_ms);
  out += ",\"queued\":" + std::to_string(info.queued);
  out += ",\"inflight\":" + std::to_string(info.inflight);
  out += ",\"accepted_total\":" + std::to_string(info.accepted_total);
  out += ",\"completed_total\":" + std::to_string(info.completed_total);
  out += ",\"rejected_total\":" + std::to_string(info.rejected_total);
  out += ",\"cancelled_total\":" + std::to_string(info.cancelled_total);
  out += ",\"deadline_total\":" + std::to_string(info.deadline_total);
  out += ",\"requests_absorbed\":" + std::to_string(info.requests_absorbed);
  out += ",\"draining\":";
  out += info.draining ? "true" : "false";
  out += ",\"telemetry\":";
  out += info.telemetry ? "true" : "false";
  out += "}";
  return out;
}

std::string RenderRepairRequest(const RepairRequestSpec& spec) {
  std::string out = "{\"type\":\"repair\",\"id\":" + Quoted(spec.id);
  out += ",\"client\":" + Quoted(spec.client);
  out += ",\"dataset\":" + Quoted(DatasetKindName(spec.dataset));
  out += ",\"tau\":" + std::to_string(spec.tau);
  out += ",\"seed\":" + std::to_string(spec.seed);
  out += ",\"max_queries\":" + std::to_string(spec.max_queries);
  out += ",\"rejection_batch\":" + std::to_string(spec.rejection_batch);
  out += ",\"num_threads\":" + std::to_string(spec.num_threads);
  out += ",\"deadline_ms\":" + FormatDouble(spec.deadline_ms);
  out += ",\"incremental\":";
  out += spec.incremental ? "true" : "false";
  if (spec.has_faults) {
    const fm::FlakyOptions& f = spec.faults;
    out += ",\"faults\":{\"seed\":" + std::to_string(f.seed);
    out += ",\"transient_rate\":" + FormatDouble(f.transient_rate);
    out += ",\"rate_limit_rate\":" + FormatDouble(f.rate_limit_rate);
    out += ",\"deadline_rate\":" + FormatDouble(f.deadline_rate);
    out += ",\"malformed_rate\":" + FormatDouble(f.malformed_rate);
    out += ",\"fail_from_query\":" + std::to_string(f.fail_from_query);
    out += ",\"outage_start\":" + std::to_string(f.outage_start);
    out += ",\"outage_length\":" + std::to_string(f.outage_length);
    out += "}";
  }
  const fm::ResilienceOptions& r = spec.resilience;
  out += ",\"resilience\":{\"seed\":" + std::to_string(r.seed);
  out += ",\"max_attempts\":" + std::to_string(r.max_attempts);
  out += ",\"backoff_base_ms\":" + FormatDouble(r.backoff_base_ms);
  out += ",\"backoff_max_ms\":" + FormatDouble(r.backoff_max_ms);
  out += ",\"attempt_cost_ms\":" + FormatDouble(r.attempt_cost_ms);
  out += ",\"breaker_failure_threshold\":" +
         std::to_string(r.breaker_failure_threshold);
  out += ",\"breaker_probe_interval\":" +
         std::to_string(r.breaker_probe_interval);
  out += "}}";
  return out;
}

std::string RenderCancelRequest(const std::string& id) {
  return "{\"type\":\"cancel\",\"id\":" + Quoted(id) + "}";
}

std::string RenderPing() { return "{\"type\":\"ping\"}"; }

std::string RenderShutdown() { return "{\"type\":\"shutdown\"}"; }

std::string RenderStatsRequest() { return "{\"type\":\"stats\"}"; }

std::string RenderStatuszRequest() { return "{\"type\":\"statusz\"}"; }

std::string ReportDigest(const core::RepairReport& report) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xFF;
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  };
  const auto mix_double = [&mix](double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  for (const core::GenerationRecord& record : report.records) {
    for (int v : record.target_values) mix(static_cast<uint64_t>(v));
    for (double e : record.embedding) mix_double(e);
    mix(static_cast<uint64_t>(record.arm));
    mix(record.accepted ? 1 : 0);
  }
  mix(static_cast<uint64_t>(report.accepted));
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, hash);
  return buffer;
}

}  // namespace chameleon::daemon
