#include "tools/chameleond/frame.h"

#include <algorithm>
#include <cstddef>
#include <string>

namespace chameleon::daemon {
namespace {

enum class ReadOutcome { kDone, kEofClean, kEofPartial, kStopped, kError };

/// Reads exactly `size` bytes into `out`, retrying interrupted reads
/// unless `should_stop` says otherwise. kEofClean means the stream ended
/// before the first byte; kEofPartial means it ended mid-way (a torn
/// write or a killed peer).
ReadOutcome ReadExact(Transport* transport, char* out, size_t size,
                      const std::function<bool()>& should_stop,
                      util::Status* error) {
  size_t off = 0;
  while (off < size) {
    auto n = transport->Read(out + off, size - off);
    if (!n.ok()) {
      if (n.status().code() == util::StatusCode::kUnavailable) {
        if (!should_stop || should_stop()) return ReadOutcome::kStopped;
        continue;
      }
      *error = n.status();
      return ReadOutcome::kError;
    }
    if (*n == 0) {
      return off == 0 ? ReadOutcome::kEofClean : ReadOutcome::kEofPartial;
    }
    off += *n;
  }
  return ReadOutcome::kDone;
}

}  // namespace

FrameReadResult ReadFrame(Transport* transport,
                          const std::function<bool()>& should_stop) {
  FrameReadResult result;

  char prefix[4];
  util::Status error = util::Status::Ok();
  switch (ReadExact(transport, prefix, sizeof(prefix), should_stop, &error)) {
    case ReadOutcome::kDone:
      break;
    case ReadOutcome::kEofClean:
      result.kind = FrameReadResult::Kind::kEof;
      return result;
    case ReadOutcome::kEofPartial:
      result.kind = FrameReadResult::Kind::kTruncated;
      result.status = util::Status::IoError("stream ended inside a length "
                                            "prefix (torn write)");
      return result;
    case ReadOutcome::kStopped:
      result.kind = FrameReadResult::Kind::kInterrupted;
      return result;
    case ReadOutcome::kError:
      result.kind = FrameReadResult::Kind::kError;
      result.status = error;
      return result;
  }

  const uint32_t declared =
      static_cast<uint32_t>(static_cast<unsigned char>(prefix[0])) |
      static_cast<uint32_t>(static_cast<unsigned char>(prefix[1])) << 8 |
      static_cast<uint32_t>(static_cast<unsigned char>(prefix[2])) << 16 |
      static_cast<uint32_t>(static_cast<unsigned char>(prefix[3])) << 24;

  if (declared > kMaxFramePayload) {
    result.declared_size = declared;
    if (declared > kMaxDiscardBytes) {
      // Almost certainly not our protocol (e.g. a text prefix read as a
      // length). Discarding gigabytes to "resync" would hang the daemon
      // on garbage; treat the stream as dead.
      result.kind = FrameReadResult::Kind::kError;
      result.status = util::Status::IoError(
          "frame length " + std::to_string(declared) +
          " exceeds the discard bound; stream is not speaking the "
          "chameleond protocol");
      return result;
    }
    // Discard the declared body so the next frame parses cleanly.
    char scratch[4096];
    size_t remaining = declared;
    while (remaining > 0) {
      const size_t chunk = std::min(remaining, sizeof(scratch));
      switch (ReadExact(transport, scratch, chunk, should_stop, &error)) {
        case ReadOutcome::kDone:
          remaining -= chunk;
          continue;
        case ReadOutcome::kEofClean:
        case ReadOutcome::kEofPartial:
          result.kind = FrameReadResult::Kind::kTruncated;
          result.status = util::Status::IoError(
              "stream ended inside an oversized frame body");
          return result;
        case ReadOutcome::kStopped:
          result.kind = FrameReadResult::Kind::kInterrupted;
          return result;
        case ReadOutcome::kError:
          result.kind = FrameReadResult::Kind::kError;
          result.status = error;
          return result;
      }
    }
    result.kind = FrameReadResult::Kind::kOversized;
    return result;
  }

  result.payload.resize(declared);
  if (declared > 0) {
    switch (ReadExact(transport, result.payload.data(), declared, should_stop,
                      &error)) {
      case ReadOutcome::kDone:
        break;
      case ReadOutcome::kEofClean:
      case ReadOutcome::kEofPartial:
        result.kind = FrameReadResult::Kind::kTruncated;
        result.status = util::Status::IoError(
            "stream ended inside a frame body (torn write)");
        return result;
      case ReadOutcome::kStopped:
        result.kind = FrameReadResult::Kind::kInterrupted;
        return result;
      case ReadOutcome::kError:
        result.kind = FrameReadResult::Kind::kError;
        result.status = error;
        return result;
    }
  }
  result.kind = FrameReadResult::Kind::kFrame;
  return result;
}

util::Status WriteFrame(Transport* transport, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return util::Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds kMaxFramePayload");
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  std::string wire;
  wire.reserve(4 + payload.size());
  wire.push_back(static_cast<char>(size & 0xFF));
  wire.push_back(static_cast<char>((size >> 8) & 0xFF));
  wire.push_back(static_cast<char>((size >> 16) & 0xFF));
  wire.push_back(static_cast<char>((size >> 24) & 0xFF));
  wire.append(payload);
  return transport->Write(wire.data(), wire.size());
}

}  // namespace chameleon::daemon
