#include "tools/chameleond/transport.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <string>
#include <utility>

namespace chameleon::daemon {

// ---------------------------------------------------------------------------
// FdTransport
// ---------------------------------------------------------------------------

util::Result<size_t> FdTransport::Read(char* out, size_t max) {
  while (true) {
    const ssize_t n = ::read(read_fd_, out, max);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) {
      // Interrupted by a signal. Surface it so the serve loop can check
      // its shutdown flag (SIGINT/SIGTERM handlers are installed without
      // SA_RESTART for exactly this reason).
      return util::Status::Unavailable("read interrupted");
    }
    return util::Status::IoError(std::string("read failed: ") +
                                 std::strerror(errno));
  }
}

util::Status FdTransport::Write(const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(write_fd_, data + off, size - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return util::Status::IoError(std::string("write failed: ") +
                                 (n < 0 ? std::strerror(errno)
                                        : "zero-byte write"));
  }
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// PipePair
// ---------------------------------------------------------------------------

/// One buffered byte stream with blocking reads. `wake` is a one-shot
/// pulse consumed by the first blocked reader it releases.
struct PipePair::Conduit {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<char> buffer CHAMELEON_GUARDED_BY(mutex);
  bool closed CHAMELEON_GUARDED_BY(mutex) = false;
  bool wake CHAMELEON_GUARDED_BY(mutex) = false;
};

class PipePair::Endpoint : public Transport {
 public:
  Endpoint(std::shared_ptr<Conduit> in, std::shared_ptr<Conduit> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~Endpoint() override { Close(); }

  [[nodiscard]] util::Result<size_t> Read(char* out, size_t max) override {
    if (max == 0) return size_t{0};
    std::unique_lock<std::mutex> lock(in_->mutex);
    in_->cv.wait(lock, [this] {
      return !in_->buffer.empty() || in_->closed || in_->wake;
    });
    if (in_->buffer.empty()) {
      if (in_->closed) return size_t{0};
      in_->wake = false;  // consumed the wake pulse
      return util::Status::Unavailable("read interrupted");
    }
    size_t n = 0;
    while (n < max && !in_->buffer.empty()) {
      out[n++] = in_->buffer.front();
      in_->buffer.pop_front();
    }
    return n;
  }

  [[nodiscard]] util::Status Write(const char* data, size_t size) override {
    {
      std::lock_guard<std::mutex> lock(out_->mutex);
      if (out_->closed) {
        return util::Status::IoError("pipe closed: peer is gone");
      }
      out_->buffer.insert(out_->buffer.end(), data, data + size);
    }
    out_->cv.notify_all();
    return util::Status::Ok();
  }

  void WakeReader() override {
    {
      std::lock_guard<std::mutex> lock(in_->mutex);
      in_->wake = true;
    }
    in_->cv.notify_all();
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(out_->mutex);
      out_->closed = true;
    }
    out_->cv.notify_all();
  }

 private:
  std::shared_ptr<Conduit> in_;
  std::shared_ptr<Conduit> out_;
};

PipePair::PipePair()
    : client_to_server_(std::make_shared<Conduit>()),
      server_to_client_(std::make_shared<Conduit>()),
      client_(std::make_unique<Endpoint>(server_to_client_,
                                         client_to_server_)),
      server_(std::make_unique<Endpoint>(client_to_server_,
                                         server_to_client_)) {}

PipePair::~PipePair() = default;

Transport* PipePair::client() { return client_.get(); }
Transport* PipePair::server() { return server_.get(); }

}  // namespace chameleon::daemon
