#include "tools/chameleond/daemon.h"

#include <chrono>
#include <fstream>
#include <optional>
#include <utility>

#include "src/core/chameleon.h"
#include "src/coverage/incremental_mup.h"
#include "src/data/dataset.h"
#include "src/datasets/feret.h"
#include "src/datasets/synthetic_corpus.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/corpus.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/flaky_foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/export.h"
#include "src/obs/observability.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"
#include "tools/chameleond/frame.h"
#include "tools/obsctl/json.h"

namespace chameleon::daemon {
namespace {

/// Everything a request needs besides the model: its own corpus plus the
/// simulator's style/scene hooks for that corpus's schema.
struct RequestWorld {
  fm::Corpus corpus;
  fm::FaceStyleFn style;
  image::SceneStyle scene;
};

}  // namespace

/// Middle Eastern is absent entirely and Hispanic/Asian are thin,
/// mirroring the paper's FERET skew in miniature. Built fresh per
/// request from a fixed seed, so two requests with the same spec always
/// repair bit-identical corpora.
util::Result<fm::Corpus> MakeMicroCorpus(const embedding::Embedder* embedder) {
  fm::Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  datasets::RenderSpec spec;
  spec.image_size = 24;
  const datasets::CombinationCounts counts = {
      {{0, datasets::kFeretWhite}, 30},    {{1, datasets::kFeretWhite}, 30},
      {{0, datasets::kFeretBlack}, 12},    {{1, datasets::kFeretBlack}, 12},
      {{0, datasets::kFeretAsian}, 5},     {{1, datasets::kFeretAsian}, 5},
      {{0, datasets::kFeretHispanic}, 3},  {{1, datasets::kFeretHispanic}, 3},
  };
  util::Rng rng(4242);
  CHAMELEON_RETURN_NOT_OK(datasets::FillCorpus(
      &corpus, counts, datasets::FeretFaceStyleFn(), datasets::FeretScene(),
      embedder, spec, &rng));
  return corpus;
}

namespace {

util::Result<RequestWorld> BuildWorld(const RepairRequestSpec& spec,
                                      const embedding::Embedder* embedder) {
  RequestWorld world;
  switch (spec.dataset) {
    case DatasetKind::kMicro: {
      auto corpus = MakeMicroCorpus(embedder);
      if (!corpus.ok()) return corpus.status();
      world.corpus = *std::move(corpus);
      world.style = datasets::FeretFaceStyleFn();
      world.scene = datasets::FeretScene();
      return world;
    }
    case DatasetKind::kFeret: {
      auto corpus = datasets::MakeFeret(embedder, datasets::FeretOptions());
      if (!corpus.ok()) return corpus.status();
      world.corpus = *std::move(corpus);
      world.style = datasets::FeretFaceStyleFn();
      world.scene = datasets::FeretScene();
      return world;
    }
    case DatasetKind::kUtkFace: {
      // The §6.4.1 challenge subset with payloads: big enough to be a
      // real repair, small enough for a serving deadline to matter.
      datasets::ChallengeOptions options;
      options.render.image_size = 32;
      auto corpus = datasets::MakeUtkFaceChallengeSubset(embedder, options);
      if (!corpus.ok()) return corpus.status();
      world.corpus = *std::move(corpus);
      world.style = datasets::UtkFaceStyleFn();
      world.scene = datasets::UtkFaceScene();
      return world;
    }
  }
  return util::Status::InvalidArgument("unknown dataset kind");
}

/// Warm-index handoff between RunRequest and ExecuteRepair (incremental
/// requests only): `cached` carries a clone of the daemon's cache entry
/// in; `built` carries a freshly-built base-corpus index back out on a
/// miss so RunRequest can backfill the cache.
struct WarmIndexExchange {
  std::optional<coverage::IncrementalMupIndex> cached;
  std::optional<coverage::IncrementalMupIndex> built;
};

/// One request's entire pipeline, built from scratch: simulator, optional
/// fault injector, resilience decorator, and the repair itself. Nothing
/// here outlives the call and nothing is shared with any other request —
/// the structural form of per-request breaker/clock isolation. `warm`
/// (null unless spec.incremental) is the one deliberate exception, and
/// even it exchanges clones, never shared state.
util::Result<core::RepairReport> ExecuteRepair(const RepairRequestSpec& spec,
                                               fm::Deadline* deadline,
                                               WarmIndexExchange* warm,
                                               obs::Observability* obs) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  auto world = BuildWorld(spec, &embedder);
  if (!world.ok()) return world.status();

  fm::SimulatedFoundationModel sim(world->corpus.dataset.schema(),
                                   world->style, world->scene,
                                   fm::SimulatedFoundationModel::Options());
  std::unique_ptr<fm::FlakyFoundationModel> flaky;
  fm::FoundationModel* stack = &sim;
  if (spec.has_faults) {
    flaky = std::make_unique<fm::FlakyFoundationModel>(&sim, spec.faults);
    stack = flaky.get();
  }
  fm::ResilientFoundationModel resilient(stack, spec.resilience);

  core::ChameleonOptions options;
  options.tau = spec.tau;
  options.seed = spec.seed;
  options.max_queries = spec.max_queries;
  options.rejection_batch = spec.rejection_batch;
  options.num_threads = spec.num_threads;
  options.deadline = deadline;
  options.incremental_coverage = spec.incremental;
  options.observability = obs;  // null = telemetry off, zero overhead
  core::Chameleon system(&resilient, &embedder, &evaluators, options);
  if (spec.incremental && warm != nullptr) {
    const data::Dataset& dataset = world->corpus.dataset;
    if (warm->cached.has_value() && warm->cached->tau() == spec.tau &&
        warm->cached->num_tuples() ==
            static_cast<int64_t>(dataset.size()) &&
        warm->cached->SchemaMatches(dataset.schema())) {
      system.AdoptIncrementalIndex(*std::move(warm->cached));
    } else {
      // Cold (or stale — never trusted): build the base-corpus index
      // here and hand a pre-repair copy back for the cache, so the next
      // request with this (dataset, tau) skips the lattice traversal.
      coverage::IncrementalMupOptions index_options;
      index_options.tau = spec.tau;
      index_options.num_threads = spec.num_threads;
      auto base =
          coverage::IncrementalMupIndex::FromDataset(dataset, index_options);
      if (!base.ok()) return base.status();
      warm->built = *base;
      system.AdoptIncrementalIndex(*std::move(base));
    }
  }
  return system.RepairMinLevelMups(&world->corpus);
}

}  // namespace

Daemon::Daemon(Transport* transport, const DaemonOptions& options)
    : transport_(transport),
      options_(options),
      journal_(&clock_),
      pool_(std::make_unique<util::ThreadPool>(
          util::ThreadPool::ResolveThreadCount(options.num_threads))) {}

Daemon::~Daemon() = default;

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

void Daemon::RequestShutdown() {
  shutdown_.store(true, std::memory_order_release);
  transport_->WakeReader();
}

util::Status Daemon::SendFrame(const std::string& payload) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (write_failed_) {
    return util::Status::Unavailable("transport writer already failed");
  }
  util::Status status = WriteFrame(transport_, payload);
  if (!status.ok()) write_failed_ = true;
  return status;
}

util::Status Daemon::Resume() {
  if (options_.journal_path.empty()) return util::Status::Ok();
  std::ifstream in(options_.journal_path);
  if (!in.is_open()) return util::Status::Ok();  // nothing to resume

  std::vector<std::string> accepted_order;
  std::set<std::string> accepted;
  std::set<std::string> finished;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto event = obsctl::ParseJson(line);
    // A killed daemon leaves a ragged final line; everything before it
    // is trustworthy, the tail is not — stop there.
    if (!event.ok() || !event->is_object()) break;
    const std::string type = event->StringOr("type", "");
    const std::string id = event->StringOr("id", "");
    if (id.empty()) continue;
    if (type == "req.accepted") {
      if (accepted.insert(id).second) accepted_order.push_back(id);
    } else if (type == "req.end" || type == "req.resumed") {
      // req.resumed is terminal too: a request re-parked by an earlier
      // resume already reported its last-known state.
      finished.insert(id);
    }
  }

  std::lock_guard<std::mutex> lock(state_mutex_);
  for (const std::string& id : accepted_order) {
    seen_ids_.insert(id);  // ids stay burned across restarts
    if (finished.count(id) > 0) continue;
    resumed_.push_back({id, "re-parked"});
    ++stats_.resumed;
  }
  for (const std::string& id : finished) seen_ids_.insert(id);
  return util::Status::Ok();
}

util::Status Daemon::Serve() {
  journal_.Record(obs::JournalEvent("daemon.start")
                      .Set("max_queue", options_.max_queue)
                      .Set("max_inflight_per_client",
                           options_.max_inflight_per_client)
                      .Set("resumed", resumed_.size()));
  if (!options_.journal_path.empty()) {
    // Opens (and truncates) the stream: the pre-recorded backlog —
    // daemon.start and, on --resume, the req.resumed compaction below —
    // is flushed immediately, then every Record appends one flushed line.
    CHAMELEON_RETURN_NOT_OK(journal_.StreamTo(options_.journal_path));
  }
  for (const ResumedRequest& request : resumed_) {
    journal_.Record(obs::JournalEvent("req.resumed")
                        .Set("id", request.id)
                        .Set("state", request.state));
    util::Status sent = SendFrame(RenderResumed(request.id, request.state));
    if (!sent.ok()) break;  // peer gone already; keep serving the journal
  }

  const auto should_stop = [this] {
    return shutdown_.load(std::memory_order_acquire);
  };
  while (!should_stop()) {
    FrameReadResult frame = ReadFrame(transport_, should_stop);
    bool stop = false;
    switch (frame.kind) {
      case FrameReadResult::Kind::kFrame: {
        util::Status handled = HandleFrame(frame.payload);
        if (!handled.ok()) stop = true;  // write side is dead: drain out
        break;
      }
      case FrameReadResult::Kind::kEof:
        stop = true;
        break;
      case FrameReadResult::Kind::kInterrupted:
        break;  // the loop condition re-checks the shutdown flag
      case FrameReadResult::Kind::kTruncated: {
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          ++stats_.protocol_errors;
        }
        journal_.Record(obs::JournalEvent("proto.truncated")
                            .Set("detail", frame.status.message()));
        // The read side tore mid-frame (torn write / killed peer): no
        // resync point exists, so report it while the write side lasts
        // and treat the connection as disconnected.
        util::Status sent = SendFrame(RenderError(
            "", util::StatusCode::kInvalidArgument, frame.status.message()));
        static_cast<void>(sent);  // draining anyway
        stop = true;
        break;
      }
      case FrameReadResult::Kind::kOversized: {
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          ++stats_.protocol_errors;
        }
        journal_.Record(obs::JournalEvent("proto.oversized")
                            .Set("declared", int64_t{frame.declared_size}));
        util::Status sent = SendFrame(RenderError(
            "", util::StatusCode::kInvalidArgument,
            "frame of " + std::to_string(frame.declared_size) +
                " bytes exceeds the 1 MiB payload bound"));
        if (!sent.ok()) stop = true;
        break;
      }
      case FrameReadResult::Kind::kError:
        journal_.Record(obs::JournalEvent("io.error")
                            .Set("detail", frame.status.message()));
        stop = true;
        break;
    }
    if (stop) break;
  }

  util::Status drained = Drain();
  util::Status closed = journal_.CloseStream();
  CHAMELEON_RETURN_NOT_OK(drained);
  return closed;
}

util::Status Daemon::HandleFrame(const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.frames;
  }
  auto frame = ParseRequestFrame(payload);
  if (!frame.ok()) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++stats_.protocol_errors;
    }
    journal_.Record(obs::JournalEvent("proto.error")
                        .Set("detail", frame.status().message()));
    return SendFrame(RenderError("", frame.status().code(),
                                 frame.status().message()));
  }
  switch (frame->kind) {
    case FrameKind::kPing:
      return SendFrame(RenderPong());
    case FrameKind::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      return SendFrame(RenderAck("shutdown"));
    case FrameKind::kCancel: {
      util::Status cancelled = Cancel(frame->id);
      return SendFrame(cancelled.ok()
                           ? RenderAck(frame->id)
                           : RenderError(frame->id, cancelled.code(),
                                         cancelled.message()));
    }
    case FrameKind::kRepair: {
      util::Status admitted = Submit(frame->spec);
      return SendFrame(admitted.ok()
                           ? RenderAck(frame->spec.id)
                           : RenderError(frame->spec.id, admitted.code(),
                                         admitted.message()));
    }
    case FrameKind::kStats: {
      // Served from the aggregator's live state — in-flight requests are
      // mid-absorb by definition, so the snapshot covers every request
      // that *finished* before the scrape (the scrape contract).
      const std::string body = ScrapeOpenMetrics();
      WriteStatsSnapshot();
      return SendFrame(RenderStats(body));
    }
    case FrameKind::kStatusz:
      return SendFrame(RenderStatusz(CollectStatusz()));
  }
  return util::Status::Internal("unhandled frame kind");
}

util::Status Daemon::Submit(const RepairRequestSpec& spec) {
  auto deadline = spec.deadline_ms > 0.0
                      ? std::make_shared<fm::Deadline>(spec.deadline_ms)
                      : std::make_shared<fm::Deadline>();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (draining_) {
      return util::Status::Unavailable(
          "daemon is draining: admissions are closed");
    }
    if (seen_ids_.count(spec.id) > 0) {
      ++stats_.rejected_duplicate;
      return util::Status::InvalidArgument("duplicate request id '" +
                                           spec.id + "'");
    }
    if (stats_.active >= options_.max_queue) {
      ++stats_.rejected_overload;
      aggregator_.AddCounter("daemon.slo.admission_reject", 1,
                             clock_.NowMs());
      return util::Status::ResourceExhausted(
          "request queue is full (" + std::to_string(options_.max_queue) +
          " in flight); retry with backoff");
    }
    int& inflight = inflight_by_client_[spec.client];
    if (inflight >= options_.max_inflight_per_client) {
      ++stats_.rejected_overload;
      aggregator_.AddCounter("daemon.slo.admission_reject", 1,
                             clock_.NowMs());
      return util::Status::ResourceExhausted(
          "client '" + spec.client + "' is at its in-flight cap (" +
          std::to_string(options_.max_inflight_per_client) + ")");
    }
    ++inflight;
    seen_ids_.insert(spec.id);
    active_[spec.id] = deadline;
    ++stats_.active;
    ++stats_.accepted;
  }
  // Journaled before the ack goes out: a daemon killed after this line
  // re-parks the request on --resume; one killed before it never
  // acknowledged, so the client retries against a fresh id space.
  journal_.Record(obs::JournalEvent("req.accepted")
                      .Set("id", spec.id)
                      .Set("client", spec.client)
                      .Set("dataset", DatasetKindName(spec.dataset))
                      .Set("tau", spec.tau)
                      .Set("seed", static_cast<int64_t>(spec.seed))
                      .Set("deadline_ms", spec.deadline_ms));
  static_cast<void>(pool_->Submit(
      [this, spec, deadline] { RunRequest(spec, deadline); }));
  return util::Status::Ok();
}

util::Status Daemon::Cancel(const std::string& id) {
  std::shared_ptr<fm::Deadline> deadline;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = active_.find(id);
    if (it == active_.end()) {
      return util::Status::NotFound("request '" + id +
                                    "' is unknown or already finished");
    }
    deadline = it->second;
  }
  deadline->MarkCancelled();
  journal_.Record(obs::JournalEvent("req.cancel").Set("id", id));
  return util::Status::Ok();
}

void Daemon::RunRequest(const RepairRequestSpec& spec,
                        const std::shared_ptr<fm::Deadline>& deadline) {
  journal_.Record(obs::JournalEvent("req.start").Set("id", spec.id));
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.running;
  }

  // Request-scoped telemetry (DESIGN.md §15): the request runs against
  // its own Observability — own VirtualClock, registry, journal, tracer —
  // tagged with the wire id. Its artifacts are therefore byte-identical
  // to a standalone `chameleon_cli --request-id=<id>` run of the same
  // config; the daemon merely *wraps* each line into its own journal
  // (`req.event`/`req.span`), preserving the original bytes inside the
  // `line` field. Lock order: request-journal mutex, then daemon-journal
  // mutex — never the reverse.
  std::optional<obs::Observability> request_obs;
  if (options_.telemetry) {
    request_obs.emplace();
    request_obs->set_request_id(spec.id);
    request_obs->journal.SetLineSink([this, &spec](const std::string& line) {
      journal_.Record(obs::JournalEvent("req.event")
                          .Set("rid", spec.id)
                          .Set("line", line));
    });
    request_obs->tracer.SetSpanSink([this, &spec](const obs::SpanRecord& span) {
      journal_.Record(obs::JournalEvent("req.span")
                          .Set("rid", spec.id)
                          .Set("line", obs::SpanToJson(span, spec.id)));
    });
  }

  // Incremental requests clone the warm (dataset, tau) index if one is
  // cached; the clone — never the cached instance — is what the repair
  // mutates, so concurrent requests stay fully isolated.
  std::optional<WarmIndexExchange> warm;
  std::string index_key;
  bool warm_hit = false;
  if (spec.incremental) {
    warm.emplace();
    index_key = std::string(DatasetKindName(spec.dataset)) + "/tau=" +
                std::to_string(spec.tau);
    std::lock_guard<std::mutex> lock(index_mutex_);
    auto it = warm_indexes_.find(index_key);
    if (it != warm_indexes_.end()) {
      warm->cached = it->second;
      warm_hit = true;
    }
  }

  auto report =
      ExecuteRepair(spec, deadline.get(), warm.has_value() ? &*warm : nullptr,
                    request_obs.has_value() ? &*request_obs : nullptr);

  // The daemon's own virtual clock advances by each request's consumed
  // virtual time, so aggregator windows measure served virtual load.
  clock_.AdvanceMs(deadline->ElapsedMs());
  const double now_ms = clock_.NowMs();
  if (request_obs.has_value()) {
    aggregator_.Absorb(request_obs->registry, now_ms);
  }
  if (report.ok()) {
    if (report->deadline_expired) {
      aggregator_.AddCounter("daemon.slo.deadline_miss", 1, now_ms);
    }
    if (report->faults.parked_entries() > 0) {
      aggregator_.AddCounter("daemon.slo.parked_rounds",
                             report->faults.parked_entries(), now_ms);
    }
  }

  if (warm.has_value() && warm->built.has_value()) {
    std::lock_guard<std::mutex> lock(index_mutex_);
    warm_indexes_.insert_or_assign(index_key, *std::move(warm->built));
  }

  // Journal + respond before releasing the slot: Drain closes the
  // journal stream only once every slot is free, so req.end always makes
  // it to disk, and a resumed daemon never re-parks a finished request.
  bool was_cancelled = false;
  if (report.ok()) {
    was_cancelled = report->cancelled;
    journal_.Record(obs::JournalEvent("req.end")
                        .Set("id", spec.id)
                        .Set("status", ReportStatusLabel(*report))
                        .Set("accepted", report->accepted)
                        .Set("queries", report->queries)
                        .Set("parked", report->faults.parked_entries())
                        .Set("digest", ReportDigest(*report)));
    util::Status sent =
        SendFrame(RenderReport(spec.id, *report, deadline->ElapsedMs()));
    static_cast<void>(sent);  // peer may be gone; the journal has it
  } else {
    journal_.Record(obs::JournalEvent("req.end")
                        .Set("id", spec.id)
                        .Set("status", "failed")
                        .Set("code",
                             util::StatusCodeName(report.status().code())));
    util::Status sent = SendFrame(RenderError(spec.id, report.status().code(),
                                              report.status().message()));
    static_cast<void>(sent);
  }

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    active_.erase(spec.id);
    auto it = inflight_by_client_.find(spec.client);
    if (it != inflight_by_client_.end() && --it->second <= 0) {
      inflight_by_client_.erase(it);
    }
    --stats_.active;
    --stats_.running;
    ++stats_.completed;
    if (was_cancelled) ++stats_.cancelled;
    if (report.ok() && report->deadline_expired) ++stats_.deadline_expired;
    if (spec.incremental) {
      if (warm_hit) {
        ++stats_.index_warm_hits;
      } else {
        ++stats_.index_warm_misses;
      }
    }
  }
  drain_cv_.notify_all();
}

util::Status Daemon::Drain() {
  int64_t active_at_drain;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    draining_ = true;
    active_at_drain = stats_.active;
  }
  journal_.Record(
      obs::JournalEvent("daemon.drain").Set("active", active_at_drain));

  std::unique_lock<std::mutex> lock(state_mutex_);
  const bool voluntary = drain_cv_.wait_for(
      lock, std::chrono::duration<double, std::milli>(options_.drain_wait_ms),
      [this] { return stats_.active == 0; });
  if (!voluntary) {
    // Past the drain deadline: cancel the stragglers. They park at their
    // next round boundary and still journal req.end + send a partial
    // report, so this wait is short and bounded by one round.
    for (auto& [id, deadline] : active_) deadline->MarkCancelled();
    drain_cv_.wait(lock, [this] { return stats_.active == 0; });
  }
  lock.unlock();

  WriteStatsSnapshot();
  journal_.Record(obs::JournalEvent("daemon.exit")
                      .Set("forced", !voluntary)
                      .Set("drained", active_at_drain));
  return util::Status::Ok();
}

std::string Daemon::ScrapeOpenMetrics() {
  return obs::ExportOpenMetrics(aggregator_.Scrape(clock_.NowMs()));
}

StatuszInfo Daemon::CollectStatusz() {
  StatuszInfo info;
  info.uptime_virtual_ms = clock_.NowMs();
  info.telemetry = options_.telemetry;
  info.requests_absorbed = aggregator_.absorbed();
  std::lock_guard<std::mutex> lock(state_mutex_);
  info.queued = stats_.active - stats_.running;
  info.inflight = stats_.running;
  info.accepted_total = stats_.accepted;
  info.completed_total = stats_.completed;
  info.rejected_total = stats_.rejected_overload;
  info.cancelled_total = stats_.cancelled;
  info.deadline_total = stats_.deadline_expired;
  info.draining = draining_;
  return info;
}

void Daemon::WriteStatsSnapshot() {
  if (options_.stats_out.empty()) return;
  std::ofstream out(options_.stats_out);
  if (out) out << ScrapeOpenMetrics();
  out.close();
  if (!out) {
    journal_.Record(obs::JournalEvent("io.error")
                        .Set("detail",
                             "failed writing stats snapshot: " +
                                 options_.stats_out));
  }
}

}  // namespace chameleon::daemon
