#ifndef CHAMELEON_TOOLS_CHAMELEOND_PROTOCOL_H_
#define CHAMELEON_TOOLS_CHAMELEOND_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/core/chameleon.h"
#include "src/fm/flaky_foundation_model.h"
#include "src/fm/resilient_foundation_model.h"
#include "src/util/status.h"

namespace chameleon::daemon {

/// Datasets a request may target. All are in-tree synthetic corpora, so
/// a request is fully self-describing: no server-side state beyond the
/// request itself. kMicro is a deliberately small FERET-schema corpus
/// (tests, benches, smoke traffic); kFeret/kUtkFace are the paper's.
enum class DatasetKind { kMicro, kFeret, kUtkFace };

const char* DatasetKindName(DatasetKind kind);

/// One repair request, as carried by a `repair` frame. Every field has a
/// safe default, so a minimal frame is `{"type":"repair","id":"r1"}`.
struct RepairRequestSpec {
  std::string id;                  ///< required, unique per daemon lifetime
  std::string client = "default";  ///< in-flight caps are per client
  DatasetKind dataset = DatasetKind::kMicro;
  int64_t tau = 6;
  uint64_t seed = 11;
  int64_t max_queries = 50000;
  int rejection_batch = 4;
  int num_threads = 1;
  /// Per-request virtual-time budget (fm::Deadline); 0 = unlimited.
  double deadline_ms = 0.0;
  /// Streaming-corpus mode (DESIGN.md §14): the repair adopts a warm
  /// incremental MUP index — the daemon keeps one per (dataset, tau)
  /// across requests — instead of re-running the full lattice traversal.
  /// Accepted tuples, reports, and digests are bit-identical either way.
  bool incremental = false;
  /// Optional fault injection below the request's resilience layer (the
  /// chaos harness's scripted backend outages ride in here).
  bool has_faults = false;
  fm::FlakyOptions faults;
  /// Per-request resilience configuration. Every request gets its own
  /// ResilientFoundationModel built from this, so one request's breaker
  /// or backoff can never affect another.
  fm::ResilienceOptions resilience;
};

enum class FrameKind { kRepair, kCancel, kPing, kShutdown, kStats, kStatusz };

struct ParsedFrame {
  FrameKind kind = FrameKind::kPing;
  std::string id;          ///< repair/cancel target id
  RepairRequestSpec spec;  ///< kRepair only
};

/// Parses one client frame body: UTF-8 validation, JSON parse, type
/// dispatch, field extraction. Any failure is kInvalidArgument with a
/// message safe to echo into an error frame.
[[nodiscard]] util::Result<ParsedFrame> ParseRequestFrame(
    const std::string& payload);

/// True when `text` is well-formed UTF-8 (the frame body contract; JSON
/// escapes aside, the parser itself is byte-oriented and would happily
/// pass raw Latin-1 through into journals).
bool IsValidUtf8(const std::string& text);

// --- server -> client frames -----------------------------------------------

std::string RenderError(const std::string& id, util::StatusCode code,
                        const std::string& message);
std::string RenderAck(const std::string& id);
std::string RenderPong();
/// Final per-request report. `virtual_ms` is the request's consumed
/// virtual-time budget (Deadline::ElapsedMs).
std::string RenderReport(const std::string& id,
                         const core::RepairReport& report, double virtual_ms);
/// Emitted once per journal-recovered request on `--resume` startup.
std::string RenderResumed(const std::string& id, const std::string& state);

/// Live telemetry snapshot (`stats` frame, DESIGN.md §15). `body` is a
/// complete OpenMetrics exposition document, JSON-escaped into one
/// string field so the frame stays a single JSONL line.
std::string RenderStats(const std::string& openmetrics_body);

/// What a `statusz` frame reports: live serving state, cheap enough to
/// poll mid-chaos-run.
struct StatuszInfo {
  double uptime_virtual_ms = 0.0;  ///< daemon virtual clock (NowMs)
  int64_t queued = 0;              ///< accepted, not yet started
  int64_t inflight = 0;            ///< started, not yet finished
  int64_t accepted_total = 0;
  int64_t completed_total = 0;
  int64_t rejected_total = 0;      ///< admission rejects
  int64_t cancelled_total = 0;
  int64_t deadline_total = 0;      ///< deadline-expired completions
  int64_t requests_absorbed = 0;   ///< registries folded into the aggregate
  bool draining = false;
  bool telemetry = false;          ///< whether --telemetry is on
};

std::string RenderStatusz(const StatuszInfo& info);

// --- client -> server frames (tests, benches, future CLI client) -----------

std::string RenderRepairRequest(const RepairRequestSpec& spec);
std::string RenderCancelRequest(const std::string& id);
std::string RenderPing();
std::string RenderShutdown();
std::string RenderStatsRequest();
std::string RenderStatuszRequest();

/// FNV-1a digest over a report's generation records (target values,
/// embedding bit patterns, arm, acceptance), rendered as 16 hex digits.
/// Two runs accepted bit-identical tuples iff their digests match — the
/// chaos harness's cheap cross-process identity check.
std::string ReportDigest(const core::RepairReport& report);

/// How a finished repair is summarized on the wire.
const char* ReportStatusLabel(const core::RepairReport& report);

}  // namespace chameleon::daemon

#endif  // CHAMELEON_TOOLS_CHAMELEOND_PROTOCOL_H_
